(* Derived analyses over the observability artifacts: `--json` run
   reports, `--trace` JSONL event streams and the bench regression
   reports.  Everything here is a pure function from parsed JSON to
   strings or typed rows, so the CLI subcommand stays a thin shell and
   the analyses are unit-testable. *)

module Json = Telemetry.Json

(* --- loading --------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_file path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text ->
    (match Json.of_string (String.trim text) with
    | Ok v -> Ok v
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* Trace recovery: a crashed or killed run leaves at most one partial
   trailing line (the sink flushes every 64 events); more generally any
   unparseable line is skipped and counted rather than failing the whole
   inspection. *)
let load_trace path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text ->
    let lines = String.split_on_char '\n' text in
    let events = ref [] in
    let skipped = ref 0 in
    List.iter
      (fun line ->
        let line = String.trim line in
        if line <> "" then begin
          match Json.of_string line with
          | Ok v -> events := v :: !events
          | Error _ -> incr skipped
        end)
      lines;
    Ok (List.rev !events, !skipped)

(* --- report accessors ------------------------------------------------------ *)

let schema_of json = Option.bind (Json.member "schema" json) Json.to_string_opt

let counter json name =
  Option.value ~default:0
    (Option.bind (Option.bind (Json.member "counters" json) (Json.member name)) Json.to_int)

let counters_alist json =
  match Json.member "counters" json with
  | Some (Json.Obj fields) ->
    List.filter_map (fun (k, v) -> Option.map (fun i -> k, i) (Json.to_int v)) fields
  | Some _ | None -> []

let phase json name =
  Option.value ~default:0.
    (Option.bind (Option.bind (Json.member "phases" json) (Json.member name)) Json.to_float)

let phases_alist json =
  match Json.member "phases" json with
  | Some (Json.Obj fields) ->
    List.filter_map (fun (k, v) -> Option.map (fun f -> k, f) (Json.to_float v)) fields
  | Some _ | None -> []

let elapsed json =
  Option.value ~default:0. (Option.bind (Json.member "elapsed" json) Json.to_float)

type hist_stats = {
  h_total : int;
  h_mean : float;
  h_max : int;
}

let histogram_stats json name =
  match Option.bind (Json.member "histograms" json) (Json.member name) with
  | None -> None
  | Some h ->
    let i field = Option.value ~default:0 (Option.bind (Json.member field h) Json.to_int) in
    let f field = Option.value ~default:0. (Option.bind (Json.member field h) Json.to_float) in
    Some { h_total = i "total"; h_mean = f "mean"; h_max = i "max" }

let gap_samples json =
  match Option.bind (Json.member "series" json) (Json.member "search.gap") with
  | None -> []
  | Some s ->
    let samples = Option.value ~default:[] (Option.bind (Json.member "samples" s) Json.to_list) in
    List.filter_map
      (fun sample ->
        match Json.to_list sample with
        | Some [ t; lb; ub ] ->
          (match Json.to_float t, Json.to_float lb, Json.to_float ub with
          | Some t, Some lb, Some ub -> Some (t, lb, ub)
          | _ -> None)
        | Some _ | None -> None)
      samples

let incumbent_points json =
  match Option.bind (Json.member "incumbents" json) Json.to_list with
  | None -> []
  | Some points ->
    List.filter_map
      (fun p ->
        match Option.bind (Json.member "t" p) Json.to_float,
              Option.bind (Json.member "cost" p) Json.to_int with
        | Some t, Some c -> Some (t, c)
        | _ -> None)
      points

(* --- per-procedure effectiveness ------------------------------------------- *)

type proc_row = {
  proc : string;
  calls : int;
  time_s : float;  (* seconds attributed to this procedure *)
  time_share : float;  (* fraction of elapsed *)
  mean_tightness_pm : float;  (* mean gap closure, per mille *)
  bound_conflicts : int;  (* bound conflicts this procedure triggered *)
  mean_backjump : float;  (* mean levels undone per bound conflict *)
  pruning_credit : int;  (* total levels undone by its bound conflicts *)
}

let strip_affixes name ~prefix ~suffix =
  let pl = String.length prefix and sl = String.length suffix and nl = String.length name in
  if nl > pl + sl
     && String.sub name 0 pl = prefix
     && String.sub name (nl - sl) sl = suffix
  then Some (String.sub name pl (nl - pl - sl))
  else None

(* Procedure seconds: the shared lower_bound driver phase plus the
   procedure's own substrate (simplex for LPR, subgradient for LGR).
   With one procedure per run this attribution is exact. *)
let proc_seconds json = function
  | "lpr" -> phase json "lower_bound" +. phase json "simplex"
  | "lgr" -> phase json "lower_bound" +. phase json "subgradient"
  | "mis" | "plain" -> phase json "lower_bound"
  | _ -> 0.

let effectiveness json =
  let procs =
    let from_hist =
      match Json.member "histograms" json with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, _) -> strip_affixes k ~prefix:"lb." ~suffix:".tightness_pm")
          fields
      | Some _ | None -> []
    in
    let path = if counter json "lb.path.bound_conflicts" > 0 then [ "path" ] else [] in
    List.sort_uniq compare (from_hist @ path)
  in
  let el = elapsed json in
  let row proc =
    let tightness = histogram_stats json (Printf.sprintf "lb.%s.tightness_pm" proc) in
    let backjump =
      histogram_stats json
        (if proc = "path" then "lb.path.bc_backjump"
         else Printf.sprintf "lb.%s.bc_backjump" proc)
    in
    let calls =
      match counter json (proc ^ ".calls") with
      | 0 -> (match tightness with Some h -> h.h_total | None -> 0)
      | n -> n
    in
    let time_s = proc_seconds json proc in
    let bc = counter json (Printf.sprintf "lb.%s.bound_conflicts" proc) in
    let mean_backjump = match backjump with Some h -> h.h_mean | None -> 0. in
    {
      proc;
      calls;
      time_s;
      time_share = (if el > 0. then time_s /. el else 0.);
      mean_tightness_pm = (match tightness with Some h -> h.h_mean | None -> 0.);
      bound_conflicts = bc;
      mean_backjump;
      pruning_credit =
        (match backjump with
        | Some h -> int_of_float (h.h_mean *. float_of_int h.h_total +. 0.5)
        | None -> 0);
    }
  in
  List.map row procs

let render_effectiveness rows =
  let header =
    Printf.sprintf "%-8s %10s %9s %7s %12s %10s %9s %8s" "proc" "calls" "time(s)" "time%"
      "tightness" "conflicts" "backjump" "pruned"
  in
  let line (r : proc_row) =
    Printf.sprintf "%-8s %10d %9.3f %6.1f%% %9.0f pm %10d %9.1f %8d" r.proc r.calls r.time_s
      (100. *. r.time_share) r.mean_tightness_pm r.bound_conflicts r.mean_backjump
      r.pruning_credit
  in
  header :: List.map line rows

(* --- gap-closure timeline -------------------------------------------------- *)

(* The sampled LB/UB trajectory when present (bsolo engine with an LB
   procedure), otherwise the incumbent trajectory alone. *)
let gap_timeline json =
  match gap_samples json with
  | [] -> List.map (fun (t, c) -> t, None, float_of_int c) (incumbent_points json)
  | samples -> List.map (fun (t, lb, ub) -> t, Some lb, ub) samples

let render_gap_timeline ?(max_lines = 32) timeline =
  match timeline with
  | [] -> [ "no gap samples or incumbents recorded" ]
  | _ ->
    let n = List.length timeline in
    let stride = if n <= max_lines then 1 else (n + max_lines - 1) / max_lines in
    let header = Printf.sprintf "%10s %12s %12s %8s" "t(s)" "lb" "ub" "gap%" in
    let lines =
      List.filteri (fun i _ -> i mod stride = 0 || i = n - 1) timeline
      |> List.map (fun (t, lb, ub) ->
             match lb with
             | Some lb ->
               let gap = if ub <> 0. then 100. *. (ub -. lb) /. Float.abs ub else 0. in
               Printf.sprintf "%10.3f %12.0f %12.0f %7.1f%%" t lb ub gap
             | None -> Printf.sprintf "%10.3f %12s %12.0f %8s" t "-" ub "-")
    in
    header :: lines

(* --- search-tree shape ----------------------------------------------------- *)

let render_tree_shape json =
  let c = counter json in
  let decisions = c "engine.decisions" in
  let conflicts = c "engine.conflicts" in
  let hist name = histogram_stats json name in
  let hist_line label name =
    match hist name with
    | None | Some { h_total = 0; _ } -> Printf.sprintf "%-22s -" label
    | Some h -> Printf.sprintf "%-22s mean %.1f  max %d  (n=%d)" label h.h_mean h.h_max h.h_total
  in
  [
    Printf.sprintf "%-22s %d" "nodes" (c "search.nodes");
    Printf.sprintf "%-22s %d" "decisions" decisions;
    Printf.sprintf "%-22s %d (%d bound)" "conflicts" conflicts (c "engine.bound_conflicts");
    Printf.sprintf "%-22s %d" "propagations" (c "engine.propagations");
    Printf.sprintf "%-22s %d" "learned" (c "engine.learned");
    Printf.sprintf "%-22s %d" "restarts" (c "engine.restarts");
    Printf.sprintf "%-22s %d" "max trail" (c "engine.max_trail");
    hist_line "decision depth" "engine.depth";
    hist_line "backjump length" "engine.backjump_len";
    hist_line "learned size" "engine.learned_size";
    Printf.sprintf "%-22s %.2f" "conflicts/decision"
      (if decisions > 0 then float_of_int conflicts /. float_of_int decisions else 0.);
  ]

let render_bcp json =
  let c = counter json in
  let mode =
    Option.value ~default:"?"
      (Option.bind
         (Option.bind (Json.member "options" json) (Json.member "bcp"))
         Json.to_string_opt)
  in
  let visits = c "bcp.visits" in
  [
    Printf.sprintf "%-22s %s" "mode" mode;
    Printf.sprintf "%-22s %d" "implied assignments" (c "bcp.propagations");
    Printf.sprintf "%-22s %d" "constraint visits" visits;
    Printf.sprintf "%-22s %d moves, %d extends" "watch updates" (c "bcp.watch_moves")
      (c "bcp.watch_extends");
    Printf.sprintf "%-22s %d watched (%d watch-all), %d counting" "constraint modes"
      (c "bcp.constrs_watched") (c "bcp.constrs_watch_all") (c "bcp.constrs_counting");
  ]

let render_cuts json =
  let c = counter json in
  let families = [ "cover"; "clique"; "implied" ] in
  let row fam =
    let g field = c (Printf.sprintf "cuts.%s.%s" fam field) in
    fam, g "separated", g "applied", g "evicted", g "tight"
  in
  let rows = List.map row families in
  let total f = List.fold_left (fun acc (_, s, a, e, t) -> acc + f (s, a, e, t)) 0 rows in
  let sep = total (fun (s, _, _, _) -> s) in
  if sep = 0 && c "presolve.reductions" = 0 then
    [ "no cuts separated and no presolve reductions (run with --cuts / --presolve?)" ]
  else
    let header = Printf.sprintf "%-10s %10s %10s %10s %10s" "family" "separated" "applied" "evicted" "tight-rate" in
    let line (fam, s, a, e, t) =
      Printf.sprintf "%-10s %10d %10d %10d %10s" fam s a e
        (if a > 0 then Printf.sprintf "%.0f%%" (100. *. float_of_int t /. float_of_int a) else "-")
    in
    (header :: List.map line rows)
    @ [
        Printf.sprintf "%-10s %10d %10d %10d" "total" sep
          (total (fun (_, a, _, _) -> a))
          (total (fun (_, _, e, _) -> e));
        Printf.sprintf "presolve: %d reductions (%d coefficients tightened, %d constraints removed)"
          (c "presolve.reductions") (c "presolve.tightened") (c "presolve.removed");
      ]

(* --- report diff ----------------------------------------------------------- *)

type diff_entry = {
  key : string;
  base : float;
  cand : float;
  ratio : float;  (* cand / base; infinity when base = 0 *)
  regression : bool;
}

(* Noise floors below which a change is never flagged: small counter
   drifts and sub-50ms timing jitter are expected between runs. *)
let counter_floor = 64.
let seconds_floor = 0.05

let entry ~threshold ~floor key base cand =
  let ratio = if base = 0. then (if cand = 0. then 1. else infinity) else cand /. base in
  let regression = cand -. base > floor && ratio > 1. +. threshold in
  { key; base; cand; ratio; regression }

let diff_run_reports ~threshold a b =
  let keys =
    List.sort_uniq compare (List.map fst (counters_alist a) @ List.map fst (counters_alist b))
  in
  let counter_entries =
    List.map
      (fun k ->
        entry ~threshold ~floor:counter_floor ("counters." ^ k)
          (float_of_int (counter a k))
          (float_of_int (counter b k)))
      keys
  in
  let phase_keys =
    List.sort_uniq compare (List.map fst (phases_alist a) @ List.map fst (phases_alist b))
  in
  let phase_entries =
    List.map
      (fun k -> entry ~threshold ~floor:seconds_floor ("phases." ^ k) (phase a k) (phase b k))
      phase_keys
  in
  entry ~threshold ~floor:seconds_floor "elapsed" (elapsed a) (elapsed b)
  :: (counter_entries @ phase_entries)

let render_diff ?(all = false) entries =
  let shown = if all then entries else List.filter (fun e -> e.regression) entries in
  match shown with
  | [] -> [ "no regressions beyond threshold" ]
  | _ ->
    let header = Printf.sprintf "%-34s %14s %14s %8s" "metric" "base" "candidate" "ratio" in
    let num v = if Float.is_nan v then "--" else Printf.sprintf "%.3f" v in
    let ratio e =
      if Float.is_nan e.ratio || e.ratio = infinity then "--"
      else Printf.sprintf "%.2fx" e.ratio
    in
    let line e =
      Printf.sprintf "%-34s %14s %14s %8s%s" e.key (num e.base) (num e.cand) (ratio e)
        (if e.regression then "  REGRESSION" else "")
    in
    header :: List.map line shown

let has_regression entries = List.exists (fun e -> e.regression) entries

(* --- bench regression reports ---------------------------------------------- *)

module Bench = struct
  let schema = "bsolo-bench-regress/1"

  type row = {
    name : string;
    solver : string;
    status : string;
    cost : int option;
    elapsed : float;
    nodes : int;
    conflicts : int;
    bound_conflicts : int;
    lb_calls : int;
    simplex_iters : int;
    warm_hits : int;
    imports : int;  (** shared-incumbent imports (portfolio rows; 0 otherwise) *)
    proof_steps : int;  (** derivation steps in the checked proof (0 = no --proof) *)
    check_ms : float;  (** checkproof replay time in milliseconds *)
    props_per_sec : float;
        (** propagation throughput (implied assignments per second of
            solve wall time); 0 = not measured.  Higher is better: the
            diff flags drops, not gains. *)
    cuts_separated : int;  (** LP cuts separated, all families ([cuts.*.separated]) *)
    cuts_active : int;
        (** cuts still in the pool at the end (applied minus evicted);
            0 on baselines written before cut separation existed, which
            gates the diff exactly like [props_per_sec] *)
    presolve_reductions : int;  (** exact presolve reductions ([presolve.reductions]) *)
  }

  let row_json (r : row) =
    Json.Obj
      [
        "name", Json.String r.name;
        "solver", Json.String r.solver;
        "status", Json.String r.status;
        "cost", (match r.cost with None -> Json.Null | Some c -> Json.Int c);
        "elapsed", Json.Float r.elapsed;
        "nodes", Json.Int r.nodes;
        "conflicts", Json.Int r.conflicts;
        "bound_conflicts", Json.Int r.bound_conflicts;
        "lb_calls", Json.Int r.lb_calls;
        "simplex_iters", Json.Int r.simplex_iters;
        "warm_hits", Json.Int r.warm_hits;
        "imports", Json.Int r.imports;
        "proof_steps", Json.Int r.proof_steps;
        "check_ms", Json.Float r.check_ms;
        "props_per_sec", Json.Float r.props_per_sec;
        "cuts_separated", Json.Int r.cuts_separated;
        "cuts_active", Json.Int r.cuts_active;
        "presolve_reductions", Json.Int r.presolve_reductions;
      ]

  let make ?obsd_overhead_pct ~rev ~limit ~scale ~per_family rows =
    Json.Obj
      ([
         "schema", Json.String schema;
         "rev", Json.String rev;
         "limit", Json.Float limit;
         "scale", Json.Float scale;
         "per_family", Json.Int per_family;
       ]
      @ (match obsd_overhead_pct with
        | None -> []
        | Some pct -> [ "obsd_overhead_pct", Json.Float pct ])
      @ [ "instances", Json.List (List.map row_json rows) ])

  let row_of_json j =
    let s name = Option.bind (Json.member name j) Json.to_string_opt in
    let i name = Option.value ~default:0 (Option.bind (Json.member name j) Json.to_int) in
    let f name = Option.value ~default:0. (Option.bind (Json.member name j) Json.to_float) in
    match s "name" with
    | None -> None
    | Some name ->
      Some
        {
          name;
          solver = Option.value ~default:"?" (s "solver");
          status = Option.value ~default:"UNKNOWN" (s "status");
          cost = Option.bind (Json.member "cost" j) Json.to_int;
          elapsed = f "elapsed";
          nodes = i "nodes";
          conflicts = i "conflicts";
          bound_conflicts = i "bound_conflicts";
          lb_calls = i "lb_calls";
          simplex_iters = i "simplex_iters";
          warm_hits = i "warm_hits";
          imports = i "imports";
          proof_steps = i "proof_steps";
          check_ms = f "check_ms";
          props_per_sec = f "props_per_sec";
          cuts_separated = i "cuts_separated";
          cuts_active = i "cuts_active";
          presolve_reductions = i "presolve_reductions";
        }

  let rows_of_json json =
    match Option.bind (Json.member "instances" json) Json.to_list with
    | None -> []
    | Some rows -> List.filter_map row_of_json rows

  let solved status =
    match status with "OPTIMAL" | "SATISFIABLE" | "UNSATISFIABLE" -> true | _ -> false

  (* Observability overhead is an absolute percentage gate, not a
     ratio-vs-baseline: the candidate regresses when serving
     /metrics + /status + /events costs the solver more than this many
     percent CPU, regardless of what the baseline happened to measure
     (the measurement is noise-centred near zero, so ratios between two
     near-zero numbers mean nothing).  Reports written before the field
     existed skip the comparison entirely. *)
  let obsd_overhead_gate = 2.0

  let obsd_overhead_entries base cand =
    let get j = Option.bind (Json.member "obsd_overhead_pct" j) Json.to_float in
    match get base, get cand with
    | Some b, Some c ->
      [
        {
          key = "obsd_overhead_pct";
          base = b;
          cand = c;
          ratio = 1.;
          regression = c > obsd_overhead_gate;
        };
      ]
    | _ -> []

  (* Per-instance comparison: losing a solved status or finding a worse
     cost is always a regression; wall time and node counts regress past
     the relative threshold (with the same noise floors as report
     diffs). *)
  let diff ~threshold base cand =
    let base_rows = rows_of_json base and cand_rows = rows_of_json cand in
    let find name rows = List.find_opt (fun (r : row) -> r.name = name) rows in
    obsd_overhead_entries base cand
    @ List.concat_map
      (fun (b : row) ->
        match find b.name cand_rows with
        | None ->
          [ { key = b.name ^ ".missing"; base = 1.; cand = 0.; ratio = 0.; regression = true } ]
        | Some c ->
          let status_reg = solved b.status && not (solved c.status) in
          let cost_reg =
            match b.cost, c.cost with Some bc, Some cc -> cc > bc | Some _, None -> true | _ -> false
          in
          [
            {
              key = b.name ^ ".status";
              base = (if solved b.status then 1. else 0.);
              cand = (if solved c.status then 1. else 0.);
              ratio = 1.;
              regression = status_reg;
            };
            {
              key = b.name ^ ".cost";
              base = (match b.cost with Some v -> float_of_int v | None -> Float.nan);
              cand = (match c.cost with Some v -> float_of_int v | None -> Float.nan);
              ratio = 1.;
              regression = cost_reg;
            };
            entry ~threshold ~floor:seconds_floor (b.name ^ ".elapsed") b.elapsed c.elapsed;
            entry ~threshold ~floor:counter_floor (b.name ^ ".nodes")
              (float_of_int b.nodes) (float_of_int c.nodes);
          ]
          (* Baselines written before simplex iterations were recorded
             carry 0 here; only compare when the base actually measured
             them, so old baselines never fake a regression. *)
          @ (if b.simplex_iters > 0 then
               [
                 entry ~threshold ~floor:counter_floor (b.name ^ ".simplex_iters")
                   (float_of_int b.simplex_iters)
                   (float_of_int c.simplex_iters);
               ]
             else [])
          (* Same gating for proof metrics: only baselines produced with
             --proof (non-zero step counts) participate. *)
          @ (if b.proof_steps > 0 then
               [
                 entry ~threshold ~floor:counter_floor (b.name ^ ".proof_steps")
                   (float_of_int b.proof_steps)
                   (float_of_int c.proof_steps);
                 entry ~threshold ~floor:(1000. *. seconds_floor) (b.name ^ ".check_ms")
                   b.check_ms c.check_ms;
               ]
             else [])
          (* Propagation throughput is higher-is-better: regress when the
             candidate is slower by more than the threshold.  Baselines
             that never measured it carry 0 and are skipped. *)
          @ (if b.props_per_sec > 0. && c.props_per_sec > 0. then begin
               let ratio = c.props_per_sec /. b.props_per_sec in
               [
                 {
                   key = b.name ^ ".props_per_sec";
                   base = b.props_per_sec;
                   cand = c.props_per_sec;
                   ratio;
                   regression = ratio < 1. /. (1. +. threshold);
                 };
               ]
             end
             else [])
          (* Cut/presolve activity is higher-is-better (losing it means
             the separator or presolve went quiet); gated like
             props_per_sec on baselines that measured it. *)
          @
          List.concat_map
            (fun (key, bv, cv) ->
              if bv > 0 && cv >= 0 then begin
                let bf = float_of_int bv and cf = float_of_int cv in
                let ratio = if bf = 0. then 1. else cf /. bf in
                [
                  {
                    key = b.name ^ "." ^ key;
                    base = bf;
                    cand = cf;
                    ratio;
                    regression = cv = 0 || ratio < 1. /. (1. +. threshold);
                  };
                ]
              end
              else [])
            [
              "cuts_separated", b.cuts_separated, c.cuts_separated;
              "cuts_active", b.cuts_active, c.cuts_active;
              "presolve_reductions", b.presolve_reductions, c.presolve_reductions;
            ])
      base_rows
end

(* Dispatch on schema: two bench reports diff instance-wise, anything
   else is treated as a run report. *)
let diff ~threshold a b =
  match schema_of a, schema_of b with
  | Some sa, Some sb when sa = Bench.schema && sb = Bench.schema ->
    Bench.diff ~threshold a b
  | _ -> diff_run_reports ~threshold a b

(* --- trace summary --------------------------------------------------------- *)

let trace_summary events ~skipped =
  let tally = Hashtbl.create 16 in
  let last_t = ref 0. in
  List.iter
    (fun e ->
      (match Option.bind (Json.member "t" e) Json.to_float with
      | Some t when t > !last_t -> last_t := t
      | _ -> ());
      match Option.bind (Json.member "ev" e) Json.to_string_opt with
      | Some ev -> Hashtbl.replace tally ev (1 + Option.value ~default:0 (Hashtbl.find_opt tally ev))
      | None -> ())
    events;
  let counts =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [] |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let incumbents =
    List.filter_map
      (fun e ->
        match Option.bind (Json.member "ev" e) Json.to_string_opt with
        | Some "incumbent" ->
          (match Option.bind (Json.member "t" e) Json.to_float,
                 Option.bind (Json.member "cost" e) Json.to_int with
          | Some t, Some c -> Some (t, c)
          | _ -> None)
        | _ -> None)
      events
  in
  (* LP re-solve behaviour: warm/cold/cache split and iteration totals
     from the `simplex` events, when the trace has any. *)
  let lp_modes = Hashtbl.create 4 in
  List.iter
    (fun e ->
      match Option.bind (Json.member "ev" e) Json.to_string_opt with
      | Some "simplex" ->
        let mode =
          Option.value ~default:"?" (Option.bind (Json.member "mode" e) Json.to_string_opt)
        in
        let iters = Option.value ~default:0 (Option.bind (Json.member "iters" e) Json.to_int) in
        let calls, total = Option.value ~default:(0, 0) (Hashtbl.find_opt lp_modes mode) in
        Hashtbl.replace lp_modes mode (calls + 1, total + iters)
      | _ -> ())
    events;
  let header =
    Printf.sprintf "%d events over %.3fs%s" (List.length events) !last_t
      (if skipped > 0 then Printf.sprintf " (%d unparseable line(s) skipped)" skipped else "")
  in
  let count_lines = List.map (fun (k, v) -> Printf.sprintf "  %-16s %d" k v) counts in
  let lp_lines =
    if Hashtbl.length lp_modes = 0 then []
    else begin
      let modes =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) lp_modes []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      "lp re-solves:"
      :: List.map
           (fun (mode, (calls, iters)) ->
             Printf.sprintf "  %-8s %6d calls  %8d iters" mode calls iters)
           modes
    end
  in
  let inc_lines =
    match incumbents with
    | [] -> []
    | _ ->
      "incumbent trajectory:"
      :: List.map (fun (t, c) -> Printf.sprintf "  %10.3fs  cost %d" t c) incumbents
  in
  (header :: count_lines) @ lp_lines @ inc_lines

(* --- sampling-profile view ------------------------------------------------- *)

(* The report's "profile" member, as written by
   [Telemetry.Profile.Sampler.result_json]:
   {hz, duration, ticks, stacks: [{member, stack, count}]}.  Stacks are
   ";"-folded phase names ("lower_bound;simplex") or "idle" for a
   registered member whose stack was empty at the tick. *)

let profile_stacks profile =
  match Option.bind (Json.member "stacks" profile) Json.to_list with
  | None -> []
  | Some entries ->
    List.filter_map
      (fun e ->
        match
          ( Option.bind (Json.member "member" e) Json.to_string_opt,
            Option.bind (Json.member "stack" e) Json.to_string_opt,
            Option.bind (Json.member "count" e) Json.to_int )
        with
        | Some m, Some s, Some c -> Some (m, s, c)
        | _ -> None)
      entries

let leaf_of_stack stack =
  match String.rindex_opt stack ';' with
  | Some i -> String.sub stack (i + 1) (String.length stack - i - 1)
  | None -> stack

(* Leaf-attributed sample counts per phase, "idle" excluded: the sampled
   analogue of the exact per-phase self times in the report's "phases". *)
let profile_self_samples profile =
  let tally = Hashtbl.create 16 in
  List.iter
    (fun (_member, stack, count) ->
      if stack <> "idle" then begin
        let leaf = leaf_of_stack stack in
        Hashtbl.replace tally leaf (count + Option.value ~default:0 (Hashtbl.find_opt tally leaf))
      end)
    (profile_stacks profile);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

type profile_agreement = {
  pa_phase : string;
  pa_sampled : float;
  pa_timer : float;
  pa_ok : bool;
  pa_low : bool;
  pa_no_timers : bool;
}

(* Threshold below which the check is reported but not enforced: at a few
   dozen ticks the binomial noise on a share is already comparable to the
   15% tolerance. *)
let low_sample_floor = 30

let profile_agreement report =
  match Json.member "profile" report with
  | None -> None
  | Some profile ->
    (match profile_self_samples profile with
    | [] -> None
    | (dominant, samples) :: _ as self ->
      let attributed = List.fold_left (fun acc (_, c) -> acc + c) 0 self in
      let sampled = float_of_int samples /. float_of_int attributed in
      let timers = phases_alist report in
      let timer_total = List.fold_left (fun acc (_, s) -> acc +. s) 0. timers in
      let timer_self = Option.value ~default:0. (List.assoc_opt dominant timers) in
      let timer = if timer_total > 0. then timer_self /. timer_total else 0. in
      let diff = Float.abs (sampled -. timer) in
      let ok = diff <= 0.15 || (timer > 0. && diff /. timer <= 0.15) in
      Some
        {
          pa_phase = dominant;
          pa_sampled = sampled;
          pa_timer = timer;
          pa_ok = ok;
          pa_low = attributed < low_sample_floor;
          pa_no_timers = timer_total <= 0.;
        })

let render_profile report =
  match Json.member "profile" report with
  | None -> [ "no profile in report (run the solver with --profile-hz HZ --json)" ]
  | Some profile ->
    let getf name = Option.value ~default:0. (Option.bind (Json.member name profile) Json.to_float) in
    let ticks = Option.value ~default:0 (Option.bind (Json.member "ticks" profile) Json.to_int) in
    let header =
      Printf.sprintf "sampling profile: %.0f Hz, %d ticks over %.3fs" (getf "hz") ticks
        (getf "duration")
    in
    let stacks = profile_stacks profile in
    let folded =
      match stacks with
      | [] -> [ "  (no samples)" ]
      | _ ->
        List.map (fun (m, s, c) -> Printf.sprintf "  %s;%s %d" m s c) stacks
    in
    let self = profile_self_samples profile in
    let attributed = List.fold_left (fun acc (_, c) -> acc + c) 0 self in
    let timers = phases_alist report in
    let timer_total = List.fold_left (fun acc (_, s) -> acc +. s) 0. timers in
    let self_lines =
      List.map
        (fun (phase, c) ->
          let sampled = 100. *. float_of_int c /. float_of_int (max 1 attributed) in
          let timer =
            if timer_total > 0. then
              100. *. Option.value ~default:0. (List.assoc_opt phase timers) /. timer_total
            else 0.
          in
          Printf.sprintf "  %-16s %6d  %6.1f%%  %6.1f%%" phase c sampled timer)
        self
    in
    let verdict =
      match profile_agreement report with
      | None -> [ "no phase-attributed samples" ]
      | Some pa ->
        let status =
          if pa.pa_no_timers then "NO-TIMERS (exact phase timers absent; not enforced)"
          else if pa.pa_low then "LOW-SAMPLES (not enforced)"
          else if pa.pa_ok then "AGREES"
          else "DISAGREES"
        in
        [
          Printf.sprintf "dominant phase %s: sampled %.1f%% vs timer %.1f%% -> %s" pa.pa_phase
            (100. *. pa.pa_sampled) (100. *. pa.pa_timer) status;
        ]
    in
    (header :: "folded stacks (samples):" :: folded)
    @ ("self time (sampled vs exact timers):"
       :: Printf.sprintf "  %-16s %6s  %8s  %7s" "phase" "ticks" "sampled" "timer"
       :: self_lines)
    @ verdict

(* --- span-file validation -------------------------------------------------- *)

(* A span file is a Chrome trace-event JSON array.  A run cut short by a
   signal loses the closing "]" (and possibly a partial tail line); repair
   like the JSONL loader does: drop the torn tail, strip a dangling
   comma, close the array. *)
let load_spans path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text ->
    let parse s =
      match Json.of_string s with
      | Ok (Json.List l) -> Some l
      | Ok _ | Error _ -> None
    in
    let repaired () =
      let t = String.trim text in
      let t =
        match String.rindex_opt t '\n' with
        | Some i when not (String.length t > 0 && t.[String.length t - 1] = '}') ->
          String.sub t 0 i
        | _ -> t
      in
      let t = String.trim t in
      let t =
        if String.length t > 0 && t.[String.length t - 1] = ',' then
          String.sub t 0 (String.length t - 1)
        else t
      in
      parse (t ^ "\n]")
    in
    (match parse text with
    | Some l -> Ok l
    | None ->
      (match repaired () with
      | Some l -> Ok l
      | None -> Error (path ^ ": not a trace-event JSON array")))

type span_stats = {
  sp_events : int;
  sp_tracks : int;
  sp_max_depth : int;
  sp_last_ts : float;  (** microseconds *)
  sp_run_id : string option;
  sp_dropped : int;  (** begin events dropped at the writer's event cap *)
}

(* Check the structural invariants the writer promises: exactly one
   bsolo_run header carrying the shared epoch, and per-track (pid, tid)
   begin/end events that are well nested (E closes the innermost open B,
   matched by args.id) with non-decreasing timestamps.  Durable X / i / M
   events may be emitted from another domain onto a foreign track (e.g.
   proof flushes land on the main track), so they are exempt from the
   per-track clock check. *)
let validate_spans events =
  let violations = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let headers = ref [] in
  let stacks : (int * int, (int * string) list ref) Hashtbl.t = Hashtbl.create 8 in
  let clocks : (int * int, float) Hashtbl.t = Hashtbl.create 8 in
  let max_depth = ref 0 in
  let last_ts = ref 0. in
  let nevents = ref 0 in
  let dropped = ref 0 in
  let str m e = Option.bind (Json.member m e) Json.to_string_opt in
  let num m e = Option.bind (Json.member m e) Json.to_float in
  let arg m e = Option.bind (Json.member "args" e) (Json.member m) in
  List.iter
    (fun e ->
      incr nevents;
      let ph = Option.value ~default:"?" (str "ph" e) in
      let name = Option.value ~default:"?" (str "name" e) in
      let track =
        ( Option.value ~default:0 (Option.bind (Json.member "pid" e) Json.to_int),
          Option.value ~default:0 (Option.bind (Json.member "tid" e) Json.to_int) )
      in
      let ts = Option.value ~default:0. (num "ts" e) in
      if ts > !last_ts then last_ts := ts;
      (match ph with
      | "M" ->
        if name = "bsolo_run" then headers := e :: !headers
        else if name = "bsolo_dropped_events" then
          dropped :=
            !dropped + Option.value ~default:0 (Option.bind (arg "dropped" e) Json.to_int)
      | "B" | "E" ->
        if ts < 0. then violation "negative ts %.1f on %s %S" ts ph name;
        (match Hashtbl.find_opt clocks track with
        | Some prev when ts < prev ->
          violation "tid %d: clock went backwards (%.1f -> %.1f at %s %S)" (snd track) prev ts ph
            name
        | _ -> Hashtbl.replace clocks track ts);
        let stack =
          match Hashtbl.find_opt stacks track with
          | Some s -> s
          | None ->
            let s = ref [] in
            Hashtbl.add stacks track s;
            s
        in
        if ph = "B" then begin
          let id = Option.value ~default:0 (Option.bind (arg "id" e) Json.to_int) in
          let parent = Option.value ~default:0 (Option.bind (arg "parent" e) Json.to_int) in
          let enclosing = match !stack with (pid, _) :: _ -> pid | [] -> 0 in
          if parent <> enclosing then
            violation "tid %d: B %S claims parent %d but innermost open span is %d" (snd track)
              name parent enclosing;
          stack := (id, name) :: !stack;
          max_depth := max !max_depth (List.length !stack)
        end
        else begin
          match !stack with
          | [] -> violation "tid %d: E %S with no open span" (snd track) name
          | (id, bname) :: rest ->
            (match Option.bind (arg "id" e) Json.to_int with
            | Some eid when eid <> id ->
              violation "tid %d: E %S closes id %d but innermost open is %d (%S)" (snd track)
                name eid id bname
            | _ -> ());
            stack := rest
        end
      | _ -> ()))
    events;
  Hashtbl.iter
    (fun (_, tid) stack ->
      match !stack with
      | [] -> ()
      | open_spans ->
        violation "tid %d: %d span(s) still open at end of file (%s)" tid (List.length open_spans)
          (String.concat ", " (List.map (fun (_, n) -> n) open_spans)))
    stacks;
  (match !headers with
  | [ h ] ->
    if str "schema" (Option.value ~default:Json.Null (Json.member "args" h)) <> Some "bsolo-spans/1"
    then violation "bsolo_run header lacks schema bsolo-spans/1";
    if arg "epoch" h = None then violation "bsolo_run header lacks the shared epoch"
  | [] -> violation "no bsolo_run header event"
  | l -> violation "%d bsolo_run header events (want exactly one)" (List.length l));
  let run_id =
    match !headers with h :: _ -> Option.bind (arg "run_id" h) Json.to_string_opt | [] -> None
  in
  match !violations with
  | [] ->
    Ok
      {
        sp_events = !nevents;
        sp_tracks = Hashtbl.length clocks;
        sp_max_depth = !max_depth;
        sp_last_ts = !last_ts;
        sp_run_id = run_id;
        sp_dropped = !dropped;
      }
  | l -> Error (List.rev l)

let render_span_stats s =
  [
    Printf.sprintf "spans: %d events on %d track(s), max depth %d, %.3fs%s" s.sp_events s.sp_tracks
      s.sp_max_depth (s.sp_last_ts /. 1e6)
      (match s.sp_run_id with Some id -> ", run " ^ id | None -> "");
    "well-nested: yes (single shared epoch, per-track clocks monotone)";
  ]
  @
  if s.sp_dropped > 0 then
    [
      Printf.sprintf
        "WARNING: %d begin event(s) dropped at the writer's event cap (file is a truncated \
         prefix of the run)"
        s.sp_dropped;
    ]
  else []

(* --- heartbeat view -------------------------------------------------------- *)

module Snapshot = Telemetry.Snapshot

let heartbeat_header lines =
  List.find_opt (fun e -> schema_of e = Some "bsolo-heartbeat/1") lines

let heartbeat_snaps lines = List.filter_map Snapshot.decode lines

let render_snapshot (s : Snapshot.snap) =
  let best =
    match s.s_best with
    | Some (c, who) -> Printf.sprintf "  best %g (%s)" c who
    | None -> ""
  in
  let head = Printf.sprintf "t=%.1fs  seq %d%s" s.s_t s.s_seq best in
  let fmt_bound v = if Float.is_finite v then Printf.sprintf "%g" v else "-" in
  let member_lines =
    Printf.sprintf "  %-14s %-14s %8s %8s %8s %10s %10s" "member" "phase" "lb" "ub" "gap" "nodes"
      "rate/s"
    :: List.map
         (fun (m : Snapshot.member) ->
           let gap =
             if Float.is_finite m.m_lb && Float.is_finite m.m_ub then
               Printf.sprintf "%g" (m.m_ub -. m.m_lb)
             else "-"
           in
           Printf.sprintf "  %-14s %-14s %8s %8s %8s %10d %10.1f" m.m_name m.m_phase
             (fmt_bound m.m_lb) (fmt_bound m.m_ub) gap m.m_nodes m.m_node_rate)
         s.s_members
  in
  let delta_lines =
    match s.s_deltas with
    | [] -> []
    | ds ->
      let ds = List.sort (fun (_, a) (_, b) -> compare b a) ds in
      let top = List.filteri (fun i _ -> i < 5) ds in
      [
        "  deltas: "
        ^ String.concat "  " (List.map (fun (k, v) -> Printf.sprintf "%s +%d" k v) top);
      ]
  in
  (head :: member_lines) @ delta_lines

let heartbeat_view lines =
  let header_line =
    match heartbeat_header lines with
    | Some h ->
      let run = Option.value ~default:"?" (Option.bind (Json.member "run_id" h) Json.to_string_opt) in
      let every = Option.value ~default:0. (Option.bind (Json.member "every" h) Json.to_float) in
      Printf.sprintf "heartbeat: run %s, every %gs" run every
    | None -> "heartbeat: (no header line)"
  in
  match heartbeat_snaps lines with
  | [] -> [ header_line; "no snapshots" ]
  | snaps ->
    let n = List.length snaps in
    let last = List.nth snaps (n - 1) in
    let gap_of (s : Snapshot.snap) =
      List.fold_left
        (fun acc (m : Snapshot.member) ->
          if Float.is_finite m.m_lb && Float.is_finite m.m_ub then
            let g = m.m_ub -. m.m_lb in
            match acc with Some b -> Some (min b g) | None -> Some g
          else acc)
        None s.s_members
    in
    let trend =
      let gaps = List.filter_map gap_of snaps in
      match gaps with
      | [] -> []
      | _ ->
        [
          Printf.sprintf "gap: %s" (String.concat " -> " (List.map (fun g -> Printf.sprintf "%g" g) gaps));
        ]
    in
    (header_line :: Printf.sprintf "%d snapshot(s), latest:" n :: render_snapshot last) @ trend

(* Structural checks over a heartbeat file, for the smoke suite: a
   header, at least two snapshots (the ticker writes one at start and one
   at stop), an end record, and per-member gaps that never widen — the
   profile cells keep max(lb) / min(ub), so a widening gap means a
   non-global bound leaked into a cell. *)
let heartbeat_check lines =
  let violations = ref [] in
  let violation fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  if heartbeat_header lines = None then violation "missing bsolo-heartbeat/1 header line";
  let snaps = heartbeat_snaps lines in
  let n = List.length snaps in
  if n < 2 then violation "only %d snapshot(s) (want at least 2)" n;
  if not (List.exists (fun e -> Json.member "end" e = Some (Json.Bool true)) lines) then
    violation "missing end record";
  let last_gap : (string, float * float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Snapshot.snap) ->
      List.iter
        (fun (m : Snapshot.member) ->
          if Float.is_finite m.m_lb && Float.is_finite m.m_ub then begin
            let g = m.m_ub -. m.m_lb in
            (match Hashtbl.find_opt last_gap m.m_name with
            | Some (prev, at) when g > prev +. 1e-9 ->
              violation "member %s: gap widened %g -> %g between t=%.1fs and t=%.1fs" m.m_name prev
                g at s.s_t
            | _ -> ());
            Hashtbl.replace last_gap m.m_name (g, s.s_t)
          end)
        s.s_members)
    snaps;
  let seqs = List.map (fun (s : Snapshot.snap) -> s.s_seq) snaps in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a < b && sorted rest
    | _ -> true
  in
  if not (sorted seqs) then violation "snapshot seq numbers not strictly increasing";
  match !violations with
  | [] ->
    Ok
      [
        Printf.sprintf "heartbeat: %d snapshot(s), %d member(s), gaps non-widening" n
          (Hashtbl.length last_gap);
      ]
  | l -> Error (List.rev l)

(* [inspect.ml] shadows the library's interface module, so the
   forensics module must be re-exported to be visible to callers. *)
module Forensics = Forensics
