(* Derived analyses over the observability artifacts: `--json` run
   reports, `--trace` JSONL event streams and the bench regression
   reports.  Everything here is a pure function from parsed JSON to
   strings or typed rows, so the CLI subcommand stays a thin shell and
   the analyses are unit-testable. *)

module Json = Telemetry.Json

(* --- loading --------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_file path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text ->
    (match Json.of_string (String.trim text) with
    | Ok v -> Ok v
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))

(* Trace recovery: a crashed or killed run leaves at most one partial
   trailing line (the sink flushes every 64 events); more generally any
   unparseable line is skipped and counted rather than failing the whole
   inspection. *)
let load_trace path =
  match read_file path with
  | exception Sys_error msg -> Error msg
  | text ->
    let lines = String.split_on_char '\n' text in
    let events = ref [] in
    let skipped = ref 0 in
    List.iter
      (fun line ->
        let line = String.trim line in
        if line <> "" then begin
          match Json.of_string line with
          | Ok v -> events := v :: !events
          | Error _ -> incr skipped
        end)
      lines;
    Ok (List.rev !events, !skipped)

(* --- report accessors ------------------------------------------------------ *)

let schema_of json = Option.bind (Json.member "schema" json) Json.to_string_opt

let counter json name =
  Option.value ~default:0
    (Option.bind (Option.bind (Json.member "counters" json) (Json.member name)) Json.to_int)

let counters_alist json =
  match Json.member "counters" json with
  | Some (Json.Obj fields) ->
    List.filter_map (fun (k, v) -> Option.map (fun i -> k, i) (Json.to_int v)) fields
  | Some _ | None -> []

let phase json name =
  Option.value ~default:0.
    (Option.bind (Option.bind (Json.member "phases" json) (Json.member name)) Json.to_float)

let phases_alist json =
  match Json.member "phases" json with
  | Some (Json.Obj fields) ->
    List.filter_map (fun (k, v) -> Option.map (fun f -> k, f) (Json.to_float v)) fields
  | Some _ | None -> []

let elapsed json =
  Option.value ~default:0. (Option.bind (Json.member "elapsed" json) Json.to_float)

type hist_stats = {
  h_total : int;
  h_mean : float;
  h_max : int;
}

let histogram_stats json name =
  match Option.bind (Json.member "histograms" json) (Json.member name) with
  | None -> None
  | Some h ->
    let i field = Option.value ~default:0 (Option.bind (Json.member field h) Json.to_int) in
    let f field = Option.value ~default:0. (Option.bind (Json.member field h) Json.to_float) in
    Some { h_total = i "total"; h_mean = f "mean"; h_max = i "max" }

let gap_samples json =
  match Option.bind (Json.member "series" json) (Json.member "search.gap") with
  | None -> []
  | Some s ->
    let samples = Option.value ~default:[] (Option.bind (Json.member "samples" s) Json.to_list) in
    List.filter_map
      (fun sample ->
        match Json.to_list sample with
        | Some [ t; lb; ub ] ->
          (match Json.to_float t, Json.to_float lb, Json.to_float ub with
          | Some t, Some lb, Some ub -> Some (t, lb, ub)
          | _ -> None)
        | Some _ | None -> None)
      samples

let incumbent_points json =
  match Option.bind (Json.member "incumbents" json) Json.to_list with
  | None -> []
  | Some points ->
    List.filter_map
      (fun p ->
        match Option.bind (Json.member "t" p) Json.to_float,
              Option.bind (Json.member "cost" p) Json.to_int with
        | Some t, Some c -> Some (t, c)
        | _ -> None)
      points

(* --- per-procedure effectiveness ------------------------------------------- *)

type proc_row = {
  proc : string;
  calls : int;
  time_s : float;  (* seconds attributed to this procedure *)
  time_share : float;  (* fraction of elapsed *)
  mean_tightness_pm : float;  (* mean gap closure, per mille *)
  bound_conflicts : int;  (* bound conflicts this procedure triggered *)
  mean_backjump : float;  (* mean levels undone per bound conflict *)
  pruning_credit : int;  (* total levels undone by its bound conflicts *)
}

let strip_affixes name ~prefix ~suffix =
  let pl = String.length prefix and sl = String.length suffix and nl = String.length name in
  if nl > pl + sl
     && String.sub name 0 pl = prefix
     && String.sub name (nl - sl) sl = suffix
  then Some (String.sub name pl (nl - pl - sl))
  else None

(* Procedure seconds: the shared lower_bound driver phase plus the
   procedure's own substrate (simplex for LPR, subgradient for LGR).
   With one procedure per run this attribution is exact. *)
let proc_seconds json = function
  | "lpr" -> phase json "lower_bound" +. phase json "simplex"
  | "lgr" -> phase json "lower_bound" +. phase json "subgradient"
  | "mis" | "plain" -> phase json "lower_bound"
  | _ -> 0.

let effectiveness json =
  let procs =
    let from_hist =
      match Json.member "histograms" json with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, _) -> strip_affixes k ~prefix:"lb." ~suffix:".tightness_pm")
          fields
      | Some _ | None -> []
    in
    let path = if counter json "lb.path.bound_conflicts" > 0 then [ "path" ] else [] in
    List.sort_uniq compare (from_hist @ path)
  in
  let el = elapsed json in
  let row proc =
    let tightness = histogram_stats json (Printf.sprintf "lb.%s.tightness_pm" proc) in
    let backjump =
      histogram_stats json
        (if proc = "path" then "lb.path.bc_backjump"
         else Printf.sprintf "lb.%s.bc_backjump" proc)
    in
    let calls =
      match counter json (proc ^ ".calls") with
      | 0 -> (match tightness with Some h -> h.h_total | None -> 0)
      | n -> n
    in
    let time_s = proc_seconds json proc in
    let bc = counter json (Printf.sprintf "lb.%s.bound_conflicts" proc) in
    let mean_backjump = match backjump with Some h -> h.h_mean | None -> 0. in
    {
      proc;
      calls;
      time_s;
      time_share = (if el > 0. then time_s /. el else 0.);
      mean_tightness_pm = (match tightness with Some h -> h.h_mean | None -> 0.);
      bound_conflicts = bc;
      mean_backjump;
      pruning_credit =
        (match backjump with
        | Some h -> int_of_float (h.h_mean *. float_of_int h.h_total +. 0.5)
        | None -> 0);
    }
  in
  List.map row procs

let render_effectiveness rows =
  let header =
    Printf.sprintf "%-8s %10s %9s %7s %12s %10s %9s %8s" "proc" "calls" "time(s)" "time%"
      "tightness" "conflicts" "backjump" "pruned"
  in
  let line (r : proc_row) =
    Printf.sprintf "%-8s %10d %9.3f %6.1f%% %9.0f pm %10d %9.1f %8d" r.proc r.calls r.time_s
      (100. *. r.time_share) r.mean_tightness_pm r.bound_conflicts r.mean_backjump
      r.pruning_credit
  in
  header :: List.map line rows

(* --- gap-closure timeline -------------------------------------------------- *)

(* The sampled LB/UB trajectory when present (bsolo engine with an LB
   procedure), otherwise the incumbent trajectory alone. *)
let gap_timeline json =
  match gap_samples json with
  | [] -> List.map (fun (t, c) -> t, None, float_of_int c) (incumbent_points json)
  | samples -> List.map (fun (t, lb, ub) -> t, Some lb, ub) samples

let render_gap_timeline ?(max_lines = 32) timeline =
  match timeline with
  | [] -> [ "no gap samples or incumbents recorded" ]
  | _ ->
    let n = List.length timeline in
    let stride = if n <= max_lines then 1 else (n + max_lines - 1) / max_lines in
    let header = Printf.sprintf "%10s %12s %12s %8s" "t(s)" "lb" "ub" "gap%" in
    let lines =
      List.filteri (fun i _ -> i mod stride = 0 || i = n - 1) timeline
      |> List.map (fun (t, lb, ub) ->
             match lb with
             | Some lb ->
               let gap = if ub <> 0. then 100. *. (ub -. lb) /. Float.abs ub else 0. in
               Printf.sprintf "%10.3f %12.0f %12.0f %7.1f%%" t lb ub gap
             | None -> Printf.sprintf "%10.3f %12s %12.0f %8s" t "-" ub "-")
    in
    header :: lines

(* --- search-tree shape ----------------------------------------------------- *)

let render_tree_shape json =
  let c = counter json in
  let decisions = c "engine.decisions" in
  let conflicts = c "engine.conflicts" in
  let hist name = histogram_stats json name in
  let hist_line label name =
    match hist name with
    | None | Some { h_total = 0; _ } -> Printf.sprintf "%-22s -" label
    | Some h -> Printf.sprintf "%-22s mean %.1f  max %d  (n=%d)" label h.h_mean h.h_max h.h_total
  in
  [
    Printf.sprintf "%-22s %d" "nodes" (c "search.nodes");
    Printf.sprintf "%-22s %d" "decisions" decisions;
    Printf.sprintf "%-22s %d (%d bound)" "conflicts" conflicts (c "engine.bound_conflicts");
    Printf.sprintf "%-22s %d" "propagations" (c "engine.propagations");
    Printf.sprintf "%-22s %d" "learned" (c "engine.learned");
    Printf.sprintf "%-22s %d" "restarts" (c "engine.restarts");
    Printf.sprintf "%-22s %d" "max trail" (c "engine.max_trail");
    hist_line "decision depth" "engine.depth";
    hist_line "backjump length" "engine.backjump_len";
    hist_line "learned size" "engine.learned_size";
    Printf.sprintf "%-22s %.2f" "conflicts/decision"
      (if decisions > 0 then float_of_int conflicts /. float_of_int decisions else 0.);
  ]

(* --- report diff ----------------------------------------------------------- *)

type diff_entry = {
  key : string;
  base : float;
  cand : float;
  ratio : float;  (* cand / base; infinity when base = 0 *)
  regression : bool;
}

(* Noise floors below which a change is never flagged: small counter
   drifts and sub-50ms timing jitter are expected between runs. *)
let counter_floor = 64.
let seconds_floor = 0.05

let entry ~threshold ~floor key base cand =
  let ratio = if base = 0. then (if cand = 0. then 1. else infinity) else cand /. base in
  let regression = cand -. base > floor && ratio > 1. +. threshold in
  { key; base; cand; ratio; regression }

let diff_run_reports ~threshold a b =
  let keys =
    List.sort_uniq compare (List.map fst (counters_alist a) @ List.map fst (counters_alist b))
  in
  let counter_entries =
    List.map
      (fun k ->
        entry ~threshold ~floor:counter_floor ("counters." ^ k)
          (float_of_int (counter a k))
          (float_of_int (counter b k)))
      keys
  in
  let phase_keys =
    List.sort_uniq compare (List.map fst (phases_alist a) @ List.map fst (phases_alist b))
  in
  let phase_entries =
    List.map
      (fun k -> entry ~threshold ~floor:seconds_floor ("phases." ^ k) (phase a k) (phase b k))
      phase_keys
  in
  entry ~threshold ~floor:seconds_floor "elapsed" (elapsed a) (elapsed b)
  :: (counter_entries @ phase_entries)

let render_diff ?(all = false) entries =
  let shown = if all then entries else List.filter (fun e -> e.regression) entries in
  match shown with
  | [] -> [ "no regressions beyond threshold" ]
  | _ ->
    let header = Printf.sprintf "%-34s %14s %14s %8s" "metric" "base" "candidate" "ratio" in
    let num v = if Float.is_nan v then "--" else Printf.sprintf "%.3f" v in
    let ratio e =
      if Float.is_nan e.ratio || e.ratio = infinity then "--"
      else Printf.sprintf "%.2fx" e.ratio
    in
    let line e =
      Printf.sprintf "%-34s %14s %14s %8s%s" e.key (num e.base) (num e.cand) (ratio e)
        (if e.regression then "  REGRESSION" else "")
    in
    header :: List.map line shown

let has_regression entries = List.exists (fun e -> e.regression) entries

(* --- bench regression reports ---------------------------------------------- *)

module Bench = struct
  let schema = "bsolo-bench-regress/1"

  type row = {
    name : string;
    solver : string;
    status : string;
    cost : int option;
    elapsed : float;
    nodes : int;
    conflicts : int;
    bound_conflicts : int;
    lb_calls : int;
    simplex_iters : int;
    warm_hits : int;
    imports : int;  (** shared-incumbent imports (portfolio rows; 0 otherwise) *)
    proof_steps : int;  (** derivation steps in the checked proof (0 = no --proof) *)
    check_ms : float;  (** checkproof replay time in milliseconds *)
  }

  let row_json (r : row) =
    Json.Obj
      [
        "name", Json.String r.name;
        "solver", Json.String r.solver;
        "status", Json.String r.status;
        "cost", (match r.cost with None -> Json.Null | Some c -> Json.Int c);
        "elapsed", Json.Float r.elapsed;
        "nodes", Json.Int r.nodes;
        "conflicts", Json.Int r.conflicts;
        "bound_conflicts", Json.Int r.bound_conflicts;
        "lb_calls", Json.Int r.lb_calls;
        "simplex_iters", Json.Int r.simplex_iters;
        "warm_hits", Json.Int r.warm_hits;
        "imports", Json.Int r.imports;
        "proof_steps", Json.Int r.proof_steps;
        "check_ms", Json.Float r.check_ms;
      ]

  let make ~rev ~limit ~scale ~per_family rows =
    Json.Obj
      [
        "schema", Json.String schema;
        "rev", Json.String rev;
        "limit", Json.Float limit;
        "scale", Json.Float scale;
        "per_family", Json.Int per_family;
        "instances", Json.List (List.map row_json rows);
      ]

  let row_of_json j =
    let s name = Option.bind (Json.member name j) Json.to_string_opt in
    let i name = Option.value ~default:0 (Option.bind (Json.member name j) Json.to_int) in
    let f name = Option.value ~default:0. (Option.bind (Json.member name j) Json.to_float) in
    match s "name" with
    | None -> None
    | Some name ->
      Some
        {
          name;
          solver = Option.value ~default:"?" (s "solver");
          status = Option.value ~default:"UNKNOWN" (s "status");
          cost = Option.bind (Json.member "cost" j) Json.to_int;
          elapsed = f "elapsed";
          nodes = i "nodes";
          conflicts = i "conflicts";
          bound_conflicts = i "bound_conflicts";
          lb_calls = i "lb_calls";
          simplex_iters = i "simplex_iters";
          warm_hits = i "warm_hits";
          imports = i "imports";
          proof_steps = i "proof_steps";
          check_ms = f "check_ms";
        }

  let rows_of_json json =
    match Option.bind (Json.member "instances" json) Json.to_list with
    | None -> []
    | Some rows -> List.filter_map row_of_json rows

  let solved status =
    match status with "OPTIMAL" | "SATISFIABLE" | "UNSATISFIABLE" -> true | _ -> false

  (* Per-instance comparison: losing a solved status or finding a worse
     cost is always a regression; wall time and node counts regress past
     the relative threshold (with the same noise floors as report
     diffs). *)
  let diff ~threshold base cand =
    let base_rows = rows_of_json base and cand_rows = rows_of_json cand in
    let find name rows = List.find_opt (fun (r : row) -> r.name = name) rows in
    List.concat_map
      (fun (b : row) ->
        match find b.name cand_rows with
        | None ->
          [ { key = b.name ^ ".missing"; base = 1.; cand = 0.; ratio = 0.; regression = true } ]
        | Some c ->
          let status_reg = solved b.status && not (solved c.status) in
          let cost_reg =
            match b.cost, c.cost with Some bc, Some cc -> cc > bc | Some _, None -> true | _ -> false
          in
          [
            {
              key = b.name ^ ".status";
              base = (if solved b.status then 1. else 0.);
              cand = (if solved c.status then 1. else 0.);
              ratio = 1.;
              regression = status_reg;
            };
            {
              key = b.name ^ ".cost";
              base = (match b.cost with Some v -> float_of_int v | None -> Float.nan);
              cand = (match c.cost with Some v -> float_of_int v | None -> Float.nan);
              ratio = 1.;
              regression = cost_reg;
            };
            entry ~threshold ~floor:seconds_floor (b.name ^ ".elapsed") b.elapsed c.elapsed;
            entry ~threshold ~floor:counter_floor (b.name ^ ".nodes")
              (float_of_int b.nodes) (float_of_int c.nodes);
          ]
          (* Baselines written before simplex iterations were recorded
             carry 0 here; only compare when the base actually measured
             them, so old baselines never fake a regression. *)
          @ (if b.simplex_iters > 0 then
               [
                 entry ~threshold ~floor:counter_floor (b.name ^ ".simplex_iters")
                   (float_of_int b.simplex_iters)
                   (float_of_int c.simplex_iters);
               ]
             else [])
          (* Same gating for proof metrics: only baselines produced with
             --proof (non-zero step counts) participate. *)
          @ (if b.proof_steps > 0 then
               [
                 entry ~threshold ~floor:counter_floor (b.name ^ ".proof_steps")
                   (float_of_int b.proof_steps)
                   (float_of_int c.proof_steps);
                 entry ~threshold ~floor:(1000. *. seconds_floor) (b.name ^ ".check_ms")
                   b.check_ms c.check_ms;
               ]
             else []))
      base_rows
end

(* Dispatch on schema: two bench reports diff instance-wise, anything
   else is treated as a run report. *)
let diff ~threshold a b =
  match schema_of a, schema_of b with
  | Some sa, Some sb when sa = Bench.schema && sb = Bench.schema ->
    Bench.diff ~threshold a b
  | _ -> diff_run_reports ~threshold a b

(* --- trace summary --------------------------------------------------------- *)

let trace_summary events ~skipped =
  let tally = Hashtbl.create 16 in
  let last_t = ref 0. in
  List.iter
    (fun e ->
      (match Option.bind (Json.member "t" e) Json.to_float with
      | Some t when t > !last_t -> last_t := t
      | _ -> ());
      match Option.bind (Json.member "ev" e) Json.to_string_opt with
      | Some ev -> Hashtbl.replace tally ev (1 + Option.value ~default:0 (Hashtbl.find_opt tally ev))
      | None -> ())
    events;
  let counts =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [] |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let incumbents =
    List.filter_map
      (fun e ->
        match Option.bind (Json.member "ev" e) Json.to_string_opt with
        | Some "incumbent" ->
          (match Option.bind (Json.member "t" e) Json.to_float,
                 Option.bind (Json.member "cost" e) Json.to_int with
          | Some t, Some c -> Some (t, c)
          | _ -> None)
        | _ -> None)
      events
  in
  (* LP re-solve behaviour: warm/cold/cache split and iteration totals
     from the `simplex` events, when the trace has any. *)
  let lp_modes = Hashtbl.create 4 in
  List.iter
    (fun e ->
      match Option.bind (Json.member "ev" e) Json.to_string_opt with
      | Some "simplex" ->
        let mode =
          Option.value ~default:"?" (Option.bind (Json.member "mode" e) Json.to_string_opt)
        in
        let iters = Option.value ~default:0 (Option.bind (Json.member "iters" e) Json.to_int) in
        let calls, total = Option.value ~default:(0, 0) (Hashtbl.find_opt lp_modes mode) in
        Hashtbl.replace lp_modes mode (calls + 1, total + iters)
      | _ -> ())
    events;
  let header =
    Printf.sprintf "%d events over %.3fs%s" (List.length events) !last_t
      (if skipped > 0 then Printf.sprintf " (%d unparseable line(s) skipped)" skipped else "")
  in
  let count_lines = List.map (fun (k, v) -> Printf.sprintf "  %-16s %d" k v) counts in
  let lp_lines =
    if Hashtbl.length lp_modes = 0 then []
    else begin
      let modes =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) lp_modes []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      "lp re-solves:"
      :: List.map
           (fun (mode, (calls, iters)) ->
             Printf.sprintf "  %-8s %6d calls  %8d iters" mode calls iters)
           modes
    end
  in
  let inc_lines =
    match incumbents with
    | [] -> []
    | _ ->
      "incumbent trajectory:"
      :: List.map (fun (t, c) -> Printf.sprintf "  %10.3fs  cost %d" t c) incumbents
  in
  (header :: count_lines) @ lp_lines @ inc_lines
