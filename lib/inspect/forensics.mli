(** Pruning forensics over a flight recording ({!Telemetry.Recorder}).

    Reconstructs the search tree from the recorded event stream —
    decisions open nodes, backjumps and prunes close subtrees — and
    answers the post-mortem questions the live counters cannot: which
    lower-bound procedure closed which parts of the tree (by depth
    band), how much exploration each closed subtree had swallowed, where
    the LB/UB gap stalled and what the search was doing meanwhile, and
    why one particular node went away.

    Pure functions from a parsed recording, so everything is
    unit-testable.  A stitched portfolio recording is analyzed per
    member [Section]. *)

type blame_row = {
  b_blame : string;
      (** an LB procedure name, ["path"], ["conflict"] (logical-conflict
          backjumps) or ["open"] (never closed before the file ended) *)
  b_by_band : int array;  (** closed decisions per depth band *)
  b_total : int;  (** sum over bands *)
  b_prunes : int;  (** closing events of this blame (0 for synthetics) *)
  b_wasted : int;  (** nodes explored inside the subtrees it closed *)
}

type stall = {
  st_from_us : int;
  st_to_us : int;
  st_decisions : int;
  st_conflicts : int;  (** backjump events during the stall *)
  st_prunes : int;
  st_lb_evals : int;
}

type analysis = {
  a_member : string option;  (** section name in a stitched recording *)
  a_events : int;
  a_decisions : int;  (** nodes opened by a decision *)
  a_prune_events : int;  (** bound-conflict prunes (each also a node) *)
  a_accounted : int;  (** decisions closed or open + prune events *)
  a_fin : (string * int) option;  (** recorded final status and node count *)
  a_max_depth : int;
  a_band : int;  (** depth-band width used by [b_by_band] *)
  a_bands : int;
  a_blame : blame_row list;  (** sorted by [b_total], descending *)
  a_incumbents : (int * int) list;  (** (t_us, cost), improvements only *)
  a_imports : (int * int * string) list;  (** (t_us, cost, member) *)
  a_root_lb : (int * int) list;  (** (t_us, bound) root-level raises *)
  a_stalls : stall list;  (** longest no-movement intervals, longest first *)
}

val analyze : Telemetry.Recorder.recording -> analysis list
(** One analysis per member section (a single-engine recording yields
    one with [a_member = None]).  The invariant behind [a_accounted]:
    every decision is closed by exactly one later backjump/prune or
    stays open, so blame totals + prune events = decisions + prunes =
    the engine's node count. *)

type node_fate = {
  n_index : int;  (** 1-based index among the recording's decisions *)
  n_t_us : int;
  n_level : int;
  n_lit : string;  (** OPB-style literal, as {!Telemetry.Recorder} prints it *)
  n_path : (int * string) list;  (** (level, literal) from the root, incl. self *)
  n_closed_by : string option;
      (** rendering of the event that removed it; [None] = still open *)
  n_subtree : int;  (** decisions opened below it before it closed *)
}

val node_fate : Telemetry.Recorder.recording -> int -> (node_fate, string) result
(** [node_fate rc n] explains the [n]-th decision (1-based, in file
    order, sections included): the path that led to it and the exact
    event that closed its subtree.  [Error] when the recording has
    fewer than [n] decisions. *)

val render : analysis list -> string list
val render_node_fate : node_fate -> string list
