open Pbo

let version = "bsolo-pbp 1"
let denom = 1 lsl 20
let lit_to_int l = if Lit.is_pos l then Lit.var l + 1 else -(Lit.var l + 1)

let lit_of_int n =
  if n = 0 then invalid_arg "Proof.lit_of_int";
  if n > 0 then Lit.pos (n - 1) else Lit.neg (-n - 1)

(* --- exact arithmetic with overflow detection ------------------------------ *)

exception Overflow

let add_exn a b =
  let s = a + b in
  if a >= 0 = (b >= 0) && s >= 0 <> (a >= 0) then raise Overflow;
  s

let mul_exn a b =
  if a = 0 || b = 0 then 0
  else begin
    let p = a * b in
    if p / b <> a then raise Overflow;
    p
  end

(* --- certificates ---------------------------------------------------------- *)

type cert =
  | Cert_path
  | Cert_bound of (int * float) list
  | Cert_farkas of (int * float) list

(* Pin every literal of [omega] false: per variable 0 = free,
   1 = pinned true, 2 = pinned false.  None when omega is a tautology
   (both polarities present), which is trivially entailed. *)
let pinning nvars omega =
  let pins = Array.make nvars 0 in
  let tauto = ref false in
  List.iter
    (fun l ->
      let v = Lit.var l in
      if v >= 0 && v < nvars then begin
        let want = if Lit.is_pos l then 2 else 1 in
        if pins.(v) <> 0 && pins.(v) <> want then tauto := true else pins.(v) <- want
      end)
    omega;
  if !tauto then None else Some pins

(* B = sum m_i d_i + sum_v min over rho-allowed values of
   [denom * gamma(l_x) - sum_i m_i a_i(l_x)], where l_x is the literal
   of v made true by value x.  This is denom times the Lagrangian
   L(m/denom) minimized over the box that the pinning allows, hence a
   valid lower bound on the cost (resp. on constraint surplus when the
   objective is excluded) of any completion falsifying omega. *)
(* Reference space shared by [b]/[y]/[j] steps: a non-negative integer
   names an original problem constraint, a negative integer [-(k+1)]
   names the [k]-th derived constraint of the current proof section
   (written [x<k>] in the log).  [lookup_derived] resolves the latter. *)
let certify_scaled_gen problem ~lookup_derived ~refs ~omega ~objective ~upper =
  let nvars = Problem.nvars problem in
  let constraints = Problem.constraints problem in
  let n = Array.length constraints in
  let resolve cid =
    if cid >= 0 then (if cid < n then Some constraints.(cid) else None)
    else lookup_derived (-cid - 1)
  in
  try
    if List.exists (fun (cid, m) -> m < 0 || resolve cid = None) refs then raise Exit;
    match pinning nvars omega with
    | None -> true
    | Some pins ->
      let a = Array.make (2 * nvars) 0 in
      let base = ref 0 in
      List.iter
        (fun (cid, m) ->
          if m > 0 then begin
            let c = match resolve cid with Some c -> c | None -> raise Exit in
            base := add_exn !base (mul_exn m (Constr.degree c));
            Array.iter
              (fun (t : Constr.term) ->
                let i = Lit.to_index t.lit in
                a.(i) <- add_exn a.(i) (mul_exn m t.coeff))
              (Constr.terms c)
          end)
        refs;
      let gamma = Array.make (2 * nvars) 0 in
      if objective then (
        match Problem.objective problem with
        | None -> ()
        | Some o ->
          Array.iter
            (fun (ct : Problem.cost_term) -> gamma.(Lit.to_index ct.lit) <- ct.cost)
            o.cost_terms);
      let total = ref !base in
      for v = 0 to nvars - 1 do
        let term positive =
          let i = Lit.to_index (Lit.make v positive) in
          add_exn (mul_exn denom gamma.(i)) (-a.(i))
        in
        let t =
          match pins.(v) with
          | 1 -> term true
          | 2 -> term false
          | _ -> min (term true) (term false)
        in
        total := add_exn !total t
      done;
      if objective then !total > mul_exn (upper - 1) denom else !total > 0
  with Overflow | Exit -> false

let certify_scaled ?(derived = [||]) problem ~refs ~omega ~objective ~upper =
  let lookup_derived k =
    if k >= 0 && k < Array.length derived then Some derived.(k) else None
  in
  certify_scaled_gen problem ~lookup_derived ~refs ~omega ~objective ~upper

(* --- cutting-planes derivations -------------------------------------------- *)

type dref =
  | Rcid of int
  | Rderived of int
  | Rlit of Lit.t

(* Exact nonnegative combination of the referenced constraints and
   literal axioms [lit >= 0], opposite-literal cancellation, then
   ceiling division by [divisor].  Saturation and gcd reduction happen
   inside [Constr.make_ge]; every one of those operations is a sound
   cutting-planes inference over 0/1 variables, so the result is
   entailed by the references.  [None] on overflow, a bad reference or
   a non-positive divisor — the step is then unjustifiable. *)
let derive_combination ~nvars ~resolve ~refs ~divisor =
  if divisor < 1 then None
  else begin
    try
      let a = Array.make (2 * nvars) 0 in
      let deg = ref 0 in
      List.iter
        (fun (r, m) ->
          if m < 0 then raise Exit;
          if m > 0 then
            match r with
            | Rlit l ->
              if Lit.var l < 0 || Lit.var l >= nvars then raise Exit;
              let i = Lit.to_index l in
              a.(i) <- add_exn a.(i) m
            | Rcid _ | Rderived _ -> (
              match resolve r with
              | None -> raise Exit
              | Some c ->
                deg := add_exn !deg (mul_exn m (Constr.degree c));
                Array.iter
                  (fun (t : Constr.term) ->
                    let i = Lit.to_index t.lit in
                    a.(i) <- add_exn a.(i) (mul_exn m t.coeff))
                  (Constr.terms c)))
        refs;
      (* a+ l + a- ~l = (a+ - a-) l + a- *)
      for v = 0 to nvars - 1 do
        let ip = Lit.to_index (Lit.pos v) and im = Lit.to_index (Lit.neg v) in
        let c = min a.(ip) a.(im) in
        if c > 0 then begin
          a.(ip) <- a.(ip) - c;
          a.(im) <- a.(im) - c;
          deg := !deg - c
        end
      done;
      let cdiv x = if x >= 0 then (x + divisor - 1) / divisor else x / divisor in
      let raw = ref [] in
      for i = (2 * nvars) - 1 downto 0 do
        if a.(i) > 0 then raw := (cdiv a.(i), Lit.of_index i) :: !raw
      done;
      Some (Constr.make_ge !raw (cdiv !deg))
    with Overflow | Exit | Invalid_argument _ -> None
  end

(* --- objective cuts (checker-side recomputation) --------------------------- *)

let single_norm = function [ n ] -> Some n | [] | _ :: _ :: _ -> None

let objective_cut problem ~upper =
  match Problem.objective problem with
  | None -> None
  | Some o ->
    let raw =
      Array.to_list (Array.map (fun (ct : Problem.cost_term) -> ct.cost, ct.lit) o.cost_terms)
    in
    single_norm (Constr.of_relation raw Constr.Le (upper - 1))

let cardinality_cut problem ~cid ~upper =
  let constraints = Problem.constraints problem in
  if cid < 0 || cid >= Array.length constraints then None
  else begin
    let c = constraints.(cid) in
    if not (Constr.is_cardinality c) then None
    else begin
      let lit_cost l =
        match Problem.cost_of_var problem (Lit.var l) with
        | Some (cost, cl) when Lit.equal cl l -> cost
        | Some _ | None -> 0
      in
      let costs = Constr.fold_lits (fun l acc -> lit_cost l :: acc) c [] in
      let sorted = List.sort compare costs in
      let rec take k acc = function
        | [] -> acc
        | x :: rest -> if k = 0 then acc else take (k - 1) (acc + x) rest
      in
      let v = take (Constr.degree c) 0 sorted in
      if v <= 0 then None
      else begin
        match Problem.objective problem with
        | None -> None
        | Some o ->
          let in_k = Constr.fold_lits (fun l acc -> Lit.var l :: acc) c [] in
          let raw =
            Array.to_list o.cost_terms
            |> List.filter (fun (ct : Problem.cost_term) -> not (List.mem (Lit.var ct.lit) in_k))
            |> List.map (fun (ct : Problem.cost_term) -> ct.cost, ct.lit)
          in
          single_norm (Constr.of_relation raw Constr.Le (upper - 1 - v))
      end
    end
  end

(* --- sinks ----------------------------------------------------------------- *)

module Sink = struct
  type target =
    | Chan of out_channel
    | Buf of Buffer.t

  type t = {
    target : target;
    owned : bool;
    lock : Mutex.t;
    mutable closed : bool;
    mutable nlines : int;
    sname : string;
    mutable flush_hook : (lines:int -> seconds:float -> unit) option;
  }

  let open_file path =
    {
      target = Chan (open_out path);
      owned = true;
      lock = Mutex.create ();
      closed = false;
      nlines = 0;
      sname = path;
      flush_hook = None;
    }

  let of_buffer b =
    {
      target = Buf b;
      owned = false;
      lock = Mutex.create ();
      closed = false;
      nlines = 0;
      sname = "<buffer>";
      flush_hook = None;
    }

  let name s = s.sname
  let set_flush_hook s hook = s.flush_hook <- Some hook

  let write s line =
    Mutex.lock s.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.lock)
      (fun () ->
        if not s.closed then begin
          s.nlines <- s.nlines + 1;
          match s.target with
          | Chan oc ->
            output_string oc line;
            output_char oc '\n';
            if s.nlines land 63 = 0 then begin
              match s.flush_hook with
              | None -> flush oc
              | Some hook ->
                (* The hook observes the flush (span/metrics telemetry);
                   the proof layer itself stays telemetry-free. *)
                let t0 = Unix.gettimeofday () in
                flush oc;
                hook ~lines:s.nlines ~seconds:(Unix.gettimeofday () -. t0)
            end
          | Buf b ->
            Buffer.add_string b line;
            Buffer.add_char b '\n'
        end)

  let close s =
    Mutex.lock s.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.lock)
      (fun () ->
        if not s.closed then begin
          s.closed <- true;
          match s.target with
          | Chan oc ->
            (try flush oc with Sys_error _ -> ());
            if s.owned then (try close_out oc with Sys_error _ -> ())
          | Buf _ -> ()
        end)
end

(* --- logger ---------------------------------------------------------------- *)

type conclusion =
  | Optimal of int
  | Unsat
  | Sat of int
  | Bounds of int * int option
  | No_claim

let conclusion_to_string = function
  | Optimal c -> Printf.sprintf "OPTIMAL %d" c
  | Unsat -> "UNSAT"
  | Sat c -> Printf.sprintf "SAT %d" c
  | Bounds (l, Some u) -> Printf.sprintf "BOUNDS %d %d" l u
  | Bounds (l, None) -> Printf.sprintf "BOUNDS %d inf" l
  | No_claim -> "NONE"

type t = {
  sink : Sink.t;
  problem : Problem.t;
  mutable nsteps : int;
  mutable nuncertified : int;
  (* Section-local table of derived constraints, mirroring the
     checker's numbering: every [u] step whose clause normalizes to a
     real constraint and every [j] step appends one entry. *)
  mutable derived : Constr.t array;
  mutable nderived : int;
  (* Engine cid -> proof reference, installed after presolve rewrote
     the constraint database: a reduced cid aliases either the
     untouched original constraint (>= 0) or a derived tightening
     (-(k+1)). *)
  mutable cid_map : int array option;
}

let create ?(header = true) sink problem =
  if header then begin
    Sink.write sink ("p " ^ version);
    Sink.write sink (Printf.sprintf "f %d" (Array.length (Problem.constraints problem)))
  end;
  { sink; problem; nsteps = 0; nuncertified = 0; derived = [||]; nderived = 0; cid_map = None }

let steps t = t.nsteps
let uncertified t = t.nuncertified
let derived_count t = t.nderived
let set_cid_map t map = t.cid_map <- Some map

let dpush t c =
  let cap = Array.length t.derived in
  if t.nderived = cap then begin
    let arr = Array.make (max 16 (2 * cap)) c in
    Array.blit t.derived 0 arr 0 t.nderived;
    t.derived <- arr
  end;
  t.derived.(t.nderived) <- c;
  t.nderived <- t.nderived + 1;
  t.nderived - 1

let dget t k = if k >= 0 && k < t.nderived then Some t.derived.(k) else None

let translate_cid t cid =
  if cid < 0 then Some cid
  else
    match t.cid_map with
    | None -> Some cid
    | Some map -> if cid < Array.length map then Some map.(cid) else None

let step t line =
  t.nsteps <- t.nsteps + 1;
  Sink.write t.sink line

(* Member names end up as single tokens in the log. *)
let token s =
  let b = Bytes.of_string s in
  Bytes.iteri (fun i c -> if c = ' ' || c = '\t' then Bytes.set b i '-') b;
  Bytes.to_string b

let log_comment t msg = Sink.write t.sink ("# " ^ msg)

let log_solution t ~cost model =
  let n = Model.nvars model in
  let bits = Bytes.create n in
  let arr = Model.to_array model in
  for v = 0 to n - 1 do
    Bytes.set bits v (if arr.(v) then '1' else '0')
  done;
  step t (Printf.sprintf "s %d %s" cost (Bytes.to_string bits))

let log_import t ~cost ~member = step t (Printf.sprintf "i %d %s" cost (token member))

let lit_tokens lits = List.map (fun l -> string_of_int (lit_to_int l)) lits @ [ "0" ]

let log_rup t lits =
  step t (String.concat " " ("u" :: lit_tokens lits));
  match Constr.clause lits with
  | Constr.Constr c -> Some (dpush t c, c)
  | Constr.Trivial_true | Constr.Trivial_false -> None

let log_learned t lits = ignore (log_rup t lits)
let log_contradiction t = ignore (log_rup t [])

let log_cardinality_cut t ~cid =
  match translate_cid t cid with
  | Some c when c >= 0 ->
    step t (Printf.sprintf "d %d" c);
    true
  | Some _ | None -> false

let log_derived t ~refs ~divisor =
  (* Normalize references into proof space first: engine cids go
     through the presolve alias map and may land on derived
     constraints; the emitted tokens must be the translated ones. *)
  let translated =
    List.fold_left
      (fun acc (r, m) ->
        match acc with
        | None -> None
        | Some rs -> (
          match r with
          | Rlit _ | Rderived _ -> Some ((r, m) :: rs)
          | Rcid c -> (
            match translate_cid t c with
            | None -> None
            | Some c' when c' >= 0 -> Some ((Rcid c', m) :: rs)
            | Some c' -> Some ((Rderived (-c' - 1), m) :: rs))))
      (Some []) refs
  in
  match translated with
  | None -> None
  | Some refs_rev -> (
    let refs = List.rev refs_rev in
    let pconstrs = Problem.constraints t.problem in
    let resolve = function
      | Rlit _ -> None
      | Rcid c -> if c >= 0 && c < Array.length pconstrs then Some pconstrs.(c) else None
      | Rderived k -> dget t k
    in
    match derive_combination ~nvars:(Problem.nvars t.problem) ~resolve ~refs ~divisor with
    | None | Some Constr.Trivial_true | Some Constr.Trivial_false -> None
    | Some (Constr.Constr c) ->
      let tok (r, m) =
        match r with
        | Rcid cid -> Printf.sprintf "%d:%d" cid m
        | Rderived k -> Printf.sprintf "x%d:%d" k m
        | Rlit l -> Printf.sprintf "l%d:%d" (lit_to_int l) m
      in
      step t (String.concat " " (("j" :: List.map tok refs) @ [ ";"; string_of_int divisor ]));
      Some (dpush t c, c))

let scale_refs refs =
  List.filter_map
    (fun (cid, m) ->
      if Float.is_nan m || m <= 0. || m > 1e12 then None
      else begin
        let s = Float.round (m *. float_of_int denom) in
        if s < 1. then None else Some (cid, int_of_float s)
      end)
    refs

let log_bound_conflict t ~upper ~omega cert =
  let emit kind refs =
    let ref_tok (c, m) =
      if c >= 0 then Printf.sprintf "%d:%d" c m else Printf.sprintf "x%d:%d" (-c - 1) m
    in
    let toks = (kind :: List.map ref_tok refs) @ (";" :: lit_tokens omega) in
    step t (String.concat " " toks);
    true
  in
  let reject () =
    t.nuncertified <- t.nuncertified + 1;
    false
  in
  let lookup_derived k = dget t k in
  let valid refs ~objective =
    certify_scaled_gen t.problem ~lookup_derived ~refs ~omega ~objective ~upper
  in
  (* Engine cids become proof references (original or derived) before
     validation; an untranslatable ref just weakens the candidate. *)
  let translate rf =
    List.filter_map
      (fun (c, m) ->
        match translate_cid t c with Some c' -> Some (c', m) | None -> None)
      rf
  in
  (* Dual sign conventions differ per simplex exit; validation is exact,
     so try the raw, negated and absolute variants and keep the first
     that certifies.  The path-only certificate (no multipliers) is the
     last resort for objective-bound conflicts. *)
  let variants rf =
    [ rf; List.map (fun (c, m) -> c, -.m) rf; List.map (fun (c, m) -> c, Float.abs m) rf ]
  in
  let first_valid ~objective cands =
    List.find_map
      (fun rf ->
        let refs = scale_refs (translate rf) in
        if valid refs ~objective then Some refs else None)
      cands
  in
  match cert with
  | Cert_path | Cert_bound [] ->
    if valid [] ~objective:true then emit "b" [] else reject ()
  | Cert_bound rf -> (
    match first_valid ~objective:true (variants rf @ [ [] ]) with
    | Some refs -> emit "b" refs
    | None -> reject ())
  | Cert_farkas rf -> (
    match first_valid ~objective:false (variants rf) with
    | Some refs -> emit "y" refs
    | None -> reject ())

let log_member t name =
  t.nderived <- 0;
  Sink.write t.sink ("m " ^ token name)
let log_conclusion t c = Sink.write t.sink ("c " ^ conclusion_to_string c)
let log_final t c = Sink.write t.sink ("F " ^ conclusion_to_string c)

(* --- checker --------------------------------------------------------------- *)

module Check = struct
  type summary = {
    steps : int;
    rup : int;
    bound : int;
    farkas : int;
    solutions : int;
    imports : int;
    cuts : int;
    sections : string list;
    verdict : string;
  }

  exception Fail of string

  let failf fmt = Printf.ksprintf (fun msg -> raise (Fail msg)) fmt

  (* Minimal slack-based propagation engine over a growing constraint
     database.  Derived constraints are only ever added at the root;
     RUP checks assume literals on top of the root state and undo. *)
  type eng = {
    nvars : int;
    mutable constrs : Constr.t array;
    mutable nconstrs : int;
    occs : (int * int) list array;  (* lit index -> (constraint, coeff) *)
    mutable slack : int array;
    value : Value.t array;  (* per variable *)
    trail : Lit.t array;
    mutable ntrail : int;
    mutable qhead : int;
    mutable closed : bool;  (* root state conflicting: everything follows *)
  }

  let lit_value eng l =
    let v = eng.value.(Lit.var l) in
    if Lit.is_pos l then v else Value.negate v

  let assign eng l =
    eng.value.(Lit.var l) <- (if Lit.is_pos l then Value.True else Value.False);
    eng.trail.(eng.ntrail) <- l;
    eng.ntrail <- eng.ntrail + 1

  (* Slack updates always complete for a processed literal so that
     [undo_to] can reverse exactly the processed prefix. *)
  let propagate eng =
    let conflict = ref false in
    let scan ci =
      let s = eng.slack.(ci) in
      let terms = Constr.terms eng.constrs.(ci) in
      try
        Array.iter
          (fun (t : Constr.term) ->
            if t.coeff <= s then raise Exit
            else if Value.equal (lit_value eng t.lit) Value.Unknown then assign eng t.lit)
          terms
      with Exit -> ()
    in
    while (not !conflict) && eng.qhead < eng.ntrail do
      let l = eng.trail.(eng.qhead) in
      eng.qhead <- eng.qhead + 1;
      let falsified = Lit.to_index (Lit.negate l) in
      List.iter
        (fun (ci, a) ->
          eng.slack.(ci) <- eng.slack.(ci) - a;
          if eng.slack.(ci) < 0 then conflict := true)
        eng.occs.(falsified);
      if not !conflict then List.iter (fun (ci, _) -> scan ci) eng.occs.(falsified)
    done;
    !conflict

  let undo_to eng mark =
    while eng.ntrail > mark do
      eng.ntrail <- eng.ntrail - 1;
      let l = eng.trail.(eng.ntrail) in
      eng.value.(Lit.var l) <- Value.Unknown;
      if eng.ntrail < eng.qhead then
        List.iter
          (fun (ci, a) -> eng.slack.(ci) <- eng.slack.(ci) + a)
          eng.occs.(Lit.to_index (Lit.negate l))
    done;
    eng.qhead <- min eng.qhead eng.ntrail

  let grow eng =
    if eng.nconstrs = Array.length eng.constrs then begin
      let cap = max 16 (2 * eng.nconstrs) in
      let constrs = Array.make cap eng.constrs.(0) in
      Array.blit eng.constrs 0 constrs 0 eng.nconstrs;
      let slack = Array.make cap 0 in
      Array.blit eng.slack 0 slack 0 eng.nconstrs;
      eng.constrs <- constrs;
      eng.slack <- slack
    end

  (* Root-level addition: attach, then propagate to fixpoint; a conflict
     latches [closed]. *)
  let add_root eng c =
    if not eng.closed then begin
      if Array.length eng.constrs = 0 then begin
        eng.constrs <- Array.make 16 c;
        eng.slack <- Array.make 16 0
      end
      else grow eng;
      let ci = eng.nconstrs in
      eng.constrs.(ci) <- c;
      eng.nconstrs <- ci + 1;
      eng.slack.(ci) <- Constr.slack_under (lit_value eng) c;
      Array.iter
        (fun (t : Constr.term) ->
          let i = Lit.to_index t.lit in
          eng.occs.(i) <- (ci, t.coeff) :: eng.occs.(i))
        (Constr.terms c);
      if eng.slack.(ci) < 0 then eng.closed <- true
      else begin
        let s = eng.slack.(ci) in
        let implied = ref [] in
        (try
           Array.iter
             (fun (t : Constr.term) ->
               if t.coeff <= s then raise Exit
               else if Value.equal (lit_value eng t.lit) Value.Unknown then
                 implied := t.lit :: !implied)
             (Constr.terms c)
         with Exit -> ());
        List.iter
          (fun l -> if Value.equal (lit_value eng l) Value.Unknown then assign eng l)
          !implied;
        if propagate eng then eng.closed <- true
      end
    end

  let add_norm eng = function
    | Constr.Trivial_true -> ()
    | Constr.Trivial_false -> eng.closed <- true
    | Constr.Constr c -> add_root eng c

  let fresh_eng problem =
    let nvars = Problem.nvars problem in
    let eng =
      {
        nvars;
        constrs = [||];
        nconstrs = 0;
        occs = Array.make (2 * nvars) [];
        slack = [||];
        value = Array.make nvars Value.Unknown;
        trail = Array.make (max nvars 1) (Lit.pos 0);
        ntrail = 0;
        qhead = 0;
        closed = Problem.trivially_unsat problem;
      }
    in
    Array.iter (fun c -> add_root eng c) (Problem.constraints problem);
    eng

  (* RUP: assume every clause literal false on top of the root state and
     propagate; the check passes iff a conflict is reached (or the
     clause is already root-satisfied / the root is closed). *)
  let rup_holds eng clause =
    if eng.closed then true
    else if List.exists (fun l -> Value.equal (lit_value eng l) Value.True) clause then true
    else begin
      let mark = eng.ntrail in
      List.iter
        (fun l ->
          if Value.equal (lit_value eng l) Value.Unknown then assign eng (Lit.negate l))
        clause;
      let conflict = propagate eng in
      undo_to eng mark;
      conflict
    end

  (* --- replay state -------------------------------------------------- *)

  type section = {
    mutable member : string;
    mutable u_active : int;  (* internal (offset-free) incumbent bound *)
    mutable witness : int option;  (* best verified model cost, offset included *)
    mutable simported : bool;
    mutable nsteps : int;
    mutable concluded : (conclusion * bool * int * int option) option;
        (* conclusion, closed, u_active, witness at conclusion time *)
  }

  let split_ws s = String.split_on_char ' ' s |> List.filter (fun tok -> tok <> "")

  let int_of tok =
    match int_of_string_opt tok with Some n -> n | None -> failf "bad integer %S" tok

  let parse_lits eng toks =
    let rec go acc = function
      | [] -> failf "missing 0 terminator"
      | [ "0" ] -> List.rev acc
      | tok :: rest ->
        let n = int_of tok in
        if n = 0 then failf "0 terminator before end of literal list";
        let l = lit_of_int n in
        if Lit.var l >= eng.nvars then failf "literal %d out of range" n;
        go (l :: acc) rest
    in
    go [] toks

  let split_ref tok =
    match String.index_opt tok ':' with
    | None -> failf "bad multiplier token %S (want ref:m)" tok
    | Some i ->
      let head = String.sub tok 0 i in
      let m = int_of (String.sub tok (i + 1) (String.length tok - i - 1)) in
      if m < 0 then failf "negative multiplier in %S" tok;
      if head = "" then failf "empty reference in %S" tok;
      head, m

  (* [b]/[y] references: plain cid or [x<k>] derived constraint,
     encoded internally as [-(k+1)]. *)
  let parse_refs toks =
    List.map
      (fun tok ->
        let head, m = split_ref tok in
        if head.[0] = 'x' then begin
          let k = int_of (String.sub head 1 (String.length head - 1)) in
          if k < 0 then failf "bad derived reference %S" tok;
          (-k - 1, m)
        end
        else int_of head, m)
      toks

  (* [j] references additionally allow literal axioms [l<n>:m]. *)
  let parse_drefs toks =
    List.map
      (fun tok ->
        let head, m = split_ref tok in
        let r =
          if head.[0] = 'x' then begin
            let k = int_of (String.sub head 1 (String.length head - 1)) in
            if k < 0 then failf "bad derived reference %S" tok;
            Rderived k
          end
          else if head.[0] = 'l' then begin
            let n = int_of (String.sub head 1 (String.length head - 1)) in
            if n = 0 then failf "bad literal axiom %S" tok;
            Rlit (lit_of_int n)
          end
          else Rcid (int_of head)
        in
        r, m)
      toks

  let rec split_at_semi acc = function
    | [] -> failf "missing ';' separator"
    | ";" :: rest -> List.rev acc, rest
    | tok :: rest -> split_at_semi (tok :: acc) rest

  let parse_conclusion toks =
    match toks with
    | [ "OPTIMAL"; c ] -> Optimal (int_of c)
    | [ "UNSAT" ] -> Unsat
    | [ "SAT"; c ] -> Sat (int_of c)
    | [ "BOUNDS"; l; "inf" ] -> Bounds (int_of l, None)
    | [ "BOUNDS"; l; u ] -> Bounds (int_of l, Some (int_of u))
    | [ "NONE" ] -> No_claim
    | _ -> failf "bad conclusion %S" (String.concat " " toks)

  let check_lines problem next_line =
    let offset = match Problem.objective problem with Some o -> o.offset | None -> 0 in
    let init_upper = Problem.max_cost_sum problem + 1 in
    let pconstrs = Problem.constraints problem in
    let nconstraints = Array.length pconstrs in
    let eng = ref (fresh_eng problem) in
    (* Section-local derived constraints ([u] clauses and [j] results),
       referenced as [x<k>]; reset together with the engine. *)
    let dt = ref [||] in
    let ndt = ref 0 in
    let dt_reset () =
      dt := [||];
      ndt := 0
    in
    let dt_push c =
      let cap = Array.length !dt in
      if !ndt = cap then begin
        let arr = Array.make (max 16 (2 * cap)) c in
        Array.blit !dt 0 arr 0 !ndt;
        dt := arr
      end;
      !dt.(!ndt) <- c;
      incr ndt
    in
    let dt_get k = if k >= 0 && k < !ndt then Some !dt.(k) else None in
    let fresh_section name =
      {
        member = name;
        u_active = init_upper;
        witness = None;
        simported = false;
        nsteps = 0;
        concluded = None;
      }
    in
    let sec = ref (fresh_section "") in
    let done_secs = ref [] in
    let final = ref None in
    let saw_header = ref false in
    let saw_f = ref false in
    let stats_rup = ref 0
    and stats_bound = ref 0
    and stats_farkas = ref 0
    and stats_sols = ref 0
    and stats_imports = ref 0
    and stats_cuts = ref 0 in
    let require_open () =
      if not !saw_f then failf "step before 'f' constraint-count line";
      if !final <> None then failf "step after final conclusion";
      if (!sec).concluded <> None then failf "step after section conclusion"
    in
    let tighten cost =
      let s = !sec in
      let internal = cost - offset in
      if internal < s.u_active then s.u_active <- internal;
      (match objective_cut problem ~upper:s.u_active with
      | None -> ()
      | Some n -> add_norm !eng n);
      s.nsteps <- s.nsteps + 1
    in
    let handle_line line =
      let toks = split_ws line in
      match toks with
      | [] -> ()
      | tok :: _ when String.length tok > 0 && tok.[0] = '#' -> ()
      | "p" :: rest ->
        if !saw_header then failf "duplicate header";
        if String.concat " " rest <> version then
          failf "unsupported format %S (want %S)" (String.concat " " rest) version;
        saw_header := true
      | [ "f"; n ] ->
        if not !saw_header then failf "'f' before header";
        if !saw_f then failf "duplicate 'f' line";
        if int_of n <> nconstraints then
          failf "constraint count mismatch: proof says %s, problem has %d" n nconstraints;
        saw_f := true
      | "s" :: cost :: [ bits ] ->
        require_open ();
        incr stats_sols;
        let cost = int_of cost in
        if String.length bits <> Problem.nvars problem then
          failf "model length %d, problem has %d variables" (String.length bits)
            (Problem.nvars problem);
        let arr =
          Array.init (Problem.nvars problem) (fun v ->
              match bits.[v] with
              | '0' -> false
              | '1' -> true
              | c -> failf "bad model bit %C" c)
        in
        let model = Model.of_array arr in
        if not (Model.satisfies problem model) then failf "solution violates a constraint";
        let actual = Model.cost problem model in
        if actual <> cost then failf "solution costs %d, step claims %d" actual cost;
        let s = !sec in
        (match s.witness with
        | Some w when w <= cost -> ()
        | _ -> s.witness <- Some cost);
        tighten cost
      | "i" :: cost :: [ _member ] ->
        require_open ();
        incr stats_imports;
        (!sec).simported <- true;
        tighten (int_of cost)
      | "u" :: rest ->
        require_open ();
        incr stats_rup;
        let lits = parse_lits !eng rest in
        if not (rup_holds !eng lits) then failf "RUP check failed";
        let norm = Constr.clause lits in
        add_norm !eng norm;
        (match norm with Constr.Constr c -> dt_push c | _ -> ());
        (!sec).nsteps <- (!sec).nsteps + 1
      | kind :: rest when kind = "b" || kind = "y" ->
        require_open ();
        if kind = "b" then incr stats_bound else incr stats_farkas;
        let ref_toks, lit_toks = split_at_semi [] rest in
        let refs = parse_refs ref_toks in
        let omega = parse_lits !eng lit_toks in
        let objective = kind = "b" in
        if
          not
            (certify_scaled_gen problem ~lookup_derived:dt_get ~refs ~omega ~objective
               ~upper:(!sec).u_active
            || (!eng).closed)
        then failf "%s certificate does not justify the clause" kind;
        add_norm !eng (Constr.clause omega);
        (!sec).nsteps <- (!sec).nsteps + 1
      | "j" :: rest ->
        require_open ();
        incr stats_cuts;
        let ref_toks, div_toks = split_at_semi [] rest in
        let divisor =
          match div_toks with [ d ] -> int_of d | _ -> failf "bad 'j' divisor clause"
        in
        if divisor < 1 then failf "non-positive divisor %d" divisor;
        let refs = parse_drefs ref_toks in
        let resolve = function
          | Rlit _ -> None
          | Rcid c -> if c >= 0 && c < nconstraints then Some pconstrs.(c) else None
          | Rderived k -> dt_get k
        in
        (match derive_combination ~nvars:(Problem.nvars problem) ~resolve ~refs ~divisor with
        | None -> failf "invalid cutting-planes derivation"
        | Some Constr.Trivial_true -> failf "cutting-planes derivation is a tautology"
        | Some Constr.Trivial_false ->
          (!eng).closed <- true;
          (!sec).nsteps <- (!sec).nsteps + 1
        | Some (Constr.Constr c) ->
          add_norm !eng (Constr.Constr c);
          dt_push c;
          (!sec).nsteps <- (!sec).nsteps + 1)
      | [ "d"; cid ] ->
        require_open ();
        incr stats_cuts;
        let cid = int_of cid in
        (match cardinality_cut problem ~cid ~upper:(!sec).u_active with
        | None -> if not (!eng).closed then failf "no cardinality cut derivable from cid %d" cid
        | Some n -> add_norm !eng n);
        (!sec).nsteps <- (!sec).nsteps + 1
      | "m" :: [ name ] ->
        if not !saw_f then failf "'m' before 'f'";
        if !final <> None then failf "'m' after final conclusion";
        let s = !sec in
        if s.concluded <> None then begin
          done_secs := s :: !done_secs;
          eng := fresh_eng problem;
          dt_reset ();
          sec := fresh_section name
        end
        else if s.nsteps = 0 then begin
          (* pristine implicit section: replaced by the first member *)
          eng := fresh_eng problem;
          dt_reset ();
          sec := fresh_section name
        end
        else failf "member section %S starts before previous section concluded" name
      | "c" :: rest ->
        require_open ();
        let concl = parse_conclusion rest in
        let s = !sec in
        let closed = (!eng).closed in
        let cert_lb = if closed then Some (s.u_active + offset) else None in
        (match concl with
        | No_claim -> ()
        | Sat n ->
          if s.witness <> Some n then failf "SAT %d not witnessed by a verified solution" n
        | Optimal n ->
          if s.witness <> Some n then failf "OPTIMAL %d not witnessed by a verified solution" n;
          if not closed then failf "OPTIMAL claimed but no contradiction was derived";
          if s.u_active + offset < n then
            failf "OPTIMAL %d but search was only closed below %d" n (s.u_active + offset)
        | Unsat ->
          if not closed then failf "UNSAT claimed but no contradiction was derived";
          if s.witness <> None then failf "UNSAT claimed but a solution was verified";
          if s.simported then failf "UNSAT claimed but closure used imported bounds"
        | Bounds (l, u) ->
          (match u with
          | None -> ()
          | Some u -> (
            match s.witness with
            | Some w when w <= u -> ()
            | _ -> failf "upper bound %d not witnessed" u));
          let lb_limit = match cert_lb with Some cl -> cl | None -> offset in
          if l > lb_limit then failf "lower bound %d exceeds certified %d" l lb_limit);
        s.concluded <- Some (concl, closed, s.u_active, s.witness)
      | "F" :: rest ->
        if !final <> None then failf "duplicate final conclusion";
        let s = !sec in
        if s.concluded = None then begin
          if s.nsteps > 0 then failf "final conclusion before last section concluded"
        end
        else done_secs := s :: !done_secs;
        let secs = List.rev !done_secs in
        if secs = [] then failf "final conclusion with no concluded sections";
        let concl = parse_conclusion rest in
        let best_witness =
          List.fold_left
            (fun acc (x : section) ->
              match x.concluded with
              | Some (_, _, _, Some w) -> (
                match acc with Some b when b <= w -> acc | _ -> Some w)
              | _ -> acc)
            None secs
        in
        let best_lb =
          List.fold_left
            (fun acc (x : section) ->
              match x.concluded with
              | Some (_, true, u, _) -> max acc (u + offset)
              | _ -> acc)
            offset secs
        in
        let any_unsat =
          List.exists
            (fun (x : section) ->
              match x.concluded with
              | Some (_, true, _, None) -> not x.simported
              | _ -> false)
            secs
        in
        (match concl with
        | No_claim -> ()
        | Sat n ->
          if best_witness <> Some n then failf "final SAT %d not witnessed" n
        | Optimal n ->
          if best_witness <> Some n then failf "final OPTIMAL %d not witnessed" n;
          if best_lb < n then
            failf "final OPTIMAL %d but combined sections only close below %d" n best_lb
        | Unsat -> if not any_unsat then failf "final UNSAT not certified by any section"
        | Bounds (l, u) ->
          (match u with
          | None -> ()
          | Some u -> (
            match best_witness with
            | Some w when w <= u -> ()
            | _ -> failf "final upper bound %d not witnessed" u));
          if l > best_lb then failf "final lower bound %d exceeds certified %d" l best_lb);
        done_secs := List.rev secs;
        sec := fresh_section "";
        (!sec).concluded <- Some (No_claim, false, init_upper, None);
        (* sentinel: no further steps *)
        (!sec).nsteps <- 0;
        final := Some concl
      | tok :: _ -> failf "unknown step %S" tok
    in
    let lineno = ref 0 in
    let rec run () =
      match next_line () with
      | None -> ()
      | Some line ->
        incr lineno;
        (try handle_line line with Fail msg -> failf "line %d: %s" !lineno msg);
        run ()
    in
    try
      run ();
      if not !saw_f then failf "missing header or 'f' line";
      let verdict =
        match !final with
        | Some c -> conclusion_to_string c
        | None -> (
          let s = !sec in
          match s.concluded with
          | None ->
            if !done_secs <> [] then failf "multi-section proof missing final conclusion"
            else failf "proof truncated: missing conclusion"
          | Some (c, _, _, _) ->
            if !done_secs <> [] then failf "multi-section proof missing final conclusion"
            else conclusion_to_string c)
      in
      let sections =
        match !done_secs with
        | [] -> [ (!sec).member ]
        | secs -> List.rev_map (fun (x : section) -> x.member) secs
      in
      Ok
        {
          steps =
            !stats_rup + !stats_bound + !stats_farkas + !stats_sols + !stats_imports
            + !stats_cuts;
          rup = !stats_rup;
          bound = !stats_bound;
          farkas = !stats_farkas;
          solutions = !stats_sols;
          imports = !stats_imports;
          cuts = !stats_cuts;
          sections;
          verdict;
        }
    with Fail msg -> Error msg

  let check_string problem text =
    let lines = String.split_on_char '\n' text in
    let rest = ref lines in
    let next () =
      match !rest with
      | [] -> None
      | l :: tl ->
        rest := tl;
        Some l
    in
    check_lines problem next

  let check_file problem path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let next () = In_channel.input_line ic in
        check_lines problem next)
end
