open Pbo

(** Certified proof logging and checking (format [bsolo-pbp 1]).

    With [--proof FILE] the solver streams an auditable derivation
    trail: every learned clause becomes a RUP step, every bound-based
    conflict (paper eqs. 8-9) an explicit cutting-planes step carrying
    the Lagrangian or Farkas multipliers that justify it, every
    incumbent (local or imported from a portfolio peer) an
    objective-improvement step, and the run ends with a conclusion
    line.  [bsolo checkproof PROBLEM PROOF] replays the log against
    the parsed problem with exact integer arithmetic and exits
    non-zero on the first unjustified step.  See [docs/PROOFS.md] for
    the format grammar and trust model.

    Domain-safety: a {!Sink.t} serializes writers with an internal
    mutex; one logger per domain writing to its own sink is the
    intended portfolio usage. *)

val version : string
(** Header tag, ["bsolo-pbp 1"]. *)

val denom : int
(** Fixed scaling denominator for fractional multipliers: an integer
    multiplier [m] in a [b]/[y] step stands for the rational
    [m / denom].  Soundness never depends on the rounding: the scaled
    integers {e are} the multipliers being checked. *)

val lit_to_int : Lit.t -> int
(** Signed 1-based literal encoding: [x3 -> 3], [~x3 -> -3]. *)

val lit_of_int : int -> Lit.t
(** Inverse of {!lit_to_int}.  Raises [Invalid_argument] on [0]. *)

(** {1 Certificates for bound-based conflicts} *)

type cert =
  | Cert_path
      (** the path cost alone reaches the incumbent bound; no
          constraint multipliers needed. *)
  | Cert_bound of (int * float) list
      (** Lagrangian certificate: per referenced original constraint
          (index into [Problem.constraints]) a multiplier whose sign
          convention is resolved at validation time (simplex exits
          disagree on dual signs; any nonnegative choice is sound). *)
  | Cert_farkas of (int * float) list
      (** infeasibility certificate: a nonnegative combination of the
          referenced constraints is violated under the conflict
          clause's pinning, independent of the objective. *)

val certify_scaled :
  ?derived:Constr.t array ->
  Problem.t -> refs:(int * int) list -> omega:Lit.t list -> objective:bool -> upper:int -> bool
(** Exact validation shared by the logger and the checker.  [refs]
    are [(cid, m)] with [m >= 0] scaled by {!denom}; [omega] the
    clause being derived.  A negative reference [-(k+1)] names the
    [k]-th entry of [derived] — the proof section's derived-constraint
    table (written [x<k>] in the log).  Let [rho] pin every literal of [omega]
    false and [B = sum m_i d_i + sum_v min-term_v(rho)] the Lagrangian
    bound (cost terms included iff [objective]).  Returns [true] when
    [objective] and [B/denom > upper - 1] (every completion of [rho]
    satisfying the referenced constraints costs at least [upper], so
    the clause follows from the objective bound), or when
    [not objective] and [B/denom > 0] (no completion satisfies the
    referenced constraints at all).  Overflow, bad indices or
    negative multipliers return [false]. *)

(** {1 Objective cuts recomputed by the checker} *)

val objective_cut : Problem.t -> upper:int -> Constr.norm option
(** The incumbent knapsack constraint (paper eq. 10):
    [sum c_j l_j <= upper - 1] over the objective cost literals,
    [upper] offset-free.  [None] for satisfaction instances.  Must
    stay semantically identical to [Bsolo.Knapsack.upper_cut] (a test
    asserts this). *)

val cardinality_cut : Problem.t -> cid:int -> upper:int -> Constr.norm option
(** The cardinality inference (paper eqs. 11-13) for original
    constraint [cid] at incumbent bound [upper]; [None] when [cid] is
    out of range, not a cardinality constraint, or yields no cut
    ([V <= 0]).  Must stay semantically identical to
    [Bsolo.Knapsack.cardinality_inferences] (a test asserts this). *)

(** {1 Sinks} *)

module Sink : sig
  type t
  (** Buffered, mutex-guarded line sink (same discipline as
      [Telemetry.Trace]: autoflush every 64 lines, idempotent
      close). *)

  val open_file : string -> t
  (** Truncates/creates [path].  Raises [Sys_error] on failure. *)

  val of_buffer : Buffer.t -> t
  (** In-memory sink for tests. *)

  val name : t -> string

  val set_flush_hook : t -> (lines:int -> seconds:float -> unit) -> unit
  (** Observe the periodic channel flushes: called (under the sink lock,
      on the writing domain) after each autoflush with the line count so
      far and the flush duration.  The CLI wires this to a tracing span;
      the proof layer itself stays telemetry-free. *)

  val write : t -> string -> unit
  (** Append one raw line (the newline is added).  Loggers use this
      internally; the CLI uses it to terminate a log whose run aborted
      before a logger existed (parse failure), leaving a well-formed
      [NONE] conclusion instead of a truncated file. *)

  val close : t -> unit
  (** Flush and close (idempotent); file-backed sinks close their
      channel. *)
end

(** {1 Logger} *)

type conclusion =
  | Optimal of int  (** proved optimum, offset-included cost *)
  | Unsat
  | Sat of int  (** verified model of that cost, no optimality claim *)
  | Bounds of int * int option
      (** certified lower bound, witnessed upper bound ([None] =
          no witness) *)
  | No_claim  (** aborted or budget-exhausted run; nothing claimed *)

val conclusion_to_string : conclusion -> string

type t
(** A proof logger bound to one sink and one problem. *)

val create : ?header:bool -> Sink.t -> Problem.t -> t
(** [header:false] suppresses the [p]/[f] lines (portfolio member
    part files that a stitcher later concatenates). *)

val steps : t -> int
(** Derivation steps written so far ([s]/[i]/[u]/[b]/[y]/[d]). *)

val uncertified : t -> int
(** Bound conflicts whose certificate failed exact validation; the
    caller must not have pruned on them. *)

val log_comment : t -> string -> unit
val log_solution : t -> cost:int -> Model.t -> unit
(** Verified incumbent: [cost] offset-included; the full model is
    logged so the checker can replay the verification. *)

val log_import : t -> cost:int -> member:string -> unit
(** Imported incumbent (portfolio): tightens the bound under which
    later steps are checked; tagged with the originating member. *)

val log_learned : t -> Lit.t list -> unit
(** RUP step for a clause learned by conflict analysis. *)

val log_rup : t -> Lit.t list -> (int * Constr.t) option
(** Like {!log_learned} but returns the clause's derived-constraint
    index (and normal form) so later steps can reference it as
    [x<k>]; [None] when the clause normalizes to a triviality (the
    step is still written). *)

val log_contradiction : t -> unit
(** Empty-clause RUP step: the checker's root state must already be
    conflicting. *)

val log_cardinality_cut : t -> cid:int -> bool
(** Cut from {!cardinality_cut} added at the current incumbent bound.
    [cid] is an engine cid; it is translated through the presolve
    alias map first and the step is only written — returning [true] —
    when it aliases an untouched original constraint (the checker
    recomputes the cut from the original database). *)

(** {2 Cutting-planes derivations}

    A [j] step derives a new constraint as an exact nonnegative
    integer combination of references followed by a ceiling division:
    [j r1:m1 r2:m2 ... ; d].  References are original cids, derived
    constraints [x<k>], or literal axioms [l<n>:m] standing for
    [m * (lit_of_int n >= 0)] (how coefficients are weakened away
    before dividing).  The checker recomputes the combination, divides,
    saturates, and appends the result to the section's
    derived-constraint table — the logger never writes a claimed
    constraint, so a [j] step cannot overstate what it derives. *)

type dref =
  | Rcid of int  (** engine cid (translated through the alias map) *)
  | Rderived of int  (** [k]-th derived constraint of the section *)
  | Rlit of Lit.t  (** literal axiom [lit >= 0] *)

val log_derived : t -> refs:(dref * int) list -> divisor:int -> (int * Constr.t) option
(** Compute the derivation exactly as the checker will; when the
    result is a real constraint, write the [j] step and return its
    derived index and normal form.  [None] (nothing written) when a
    reference is unresolvable, arithmetic overflows, the divisor is
    non-positive, or the result is trivial — the caller must then drop
    the cut. *)

val derived_count : t -> int
(** Entries in the current section's derived-constraint table. *)

val set_cid_map : t -> int array -> unit
(** Install the presolve alias map: entry [c] gives the proof
    reference for engine cid [c] — an untouched original cid ([>= 0])
    or a derived tightening [-(k+1)].  Affects subsequent
    {!log_bound_conflict}, {!log_derived} and
    {!log_cardinality_cut}. *)

val log_bound_conflict : t -> upper:int -> omega:Lit.t list -> cert -> bool
(** Validate the certificate exactly (trying both dual sign
    conventions, falling back to the path-only certificate) and, on
    success, write the [b]/[y] step deriving [omega] and return
    [true].  On failure nothing is written, {!uncertified} is bumped
    and the caller must not prune ([false]). *)

val log_member : t -> string -> unit
(** Section marker for stitched portfolio proofs: the checker resets
    its derived-constraint database and incumbent bound. *)

val log_conclusion : t -> conclusion -> unit
val log_final : t -> conclusion -> unit
(** Combined conclusion of a stitched multi-member proof. *)

(** {1 Checking} *)

module Check : sig
  type summary = {
    steps : int;
    rup : int;
    bound : int;
    farkas : int;
    solutions : int;
    imports : int;
    cuts : int;
    sections : string list;  (** portfolio member names, [""] for a single-run log *)
    verdict : string;  (** rendered final conclusion *)
  }

  val check_string : Problem.t -> string -> (summary, string) result
  (** Replay a complete proof text against the problem.  [Error msg]
      carries the 1-based line number of the first unjustified or
      malformed step. *)

  val check_file : Problem.t -> string -> (summary, string) result
end
