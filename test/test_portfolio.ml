let solves_each_family () =
  let instances =
    [
      Benchgen.Routing.generate ~params:{ Benchgen.Routing.default with nets = 10 } 1;
      Benchgen.Two_level.generate
        ~params:{ Benchgen.Two_level.default with minterms = 20; implicants = 12 }
        1;
      Benchgen.Acc.generate ~params:{ Benchgen.Acc.default with tasks = 8; slots = 3 } 1;
    ]
  in
  List.iter
    (fun problem ->
      let r = Portfolio.solve ~budget:8.0 problem in
      (match r.outcome.status with
      | Bsolo.Outcome.Optimal | Bsolo.Outcome.Satisfiable -> ()
      | s -> Alcotest.failf "portfolio failed: %s" (Bsolo.Outcome.status_name s));
      Alcotest.(check (option string)) "no disagreement" None r.disagreement)
    instances

let agrees_with_reference () =
  for seed = 0 to 20 do
    let problem = Gen.covering seed in
    let reference = Bsolo.Exhaustive.optimum problem in
    let r = Portfolio.solve ~budget:8.0 problem in
    match reference, Bsolo.Outcome.best_cost r.outcome with
    | None, None -> ()
    | Some (_, opt), Some c ->
      if c <> opt then Alcotest.failf "seed %d: %d <> %d" seed c opt
    | None, Some _ | Some _, None -> Alcotest.failf "seed %d: status" seed
  done

let early_stop_on_proof () =
  let problem = Gen.covering 3 in
  let r = Portfolio.solve ~budget:40.0 problem in
  (* the first entry proves optimality on this easy instance, so only one
     run should have happened *)
  Alcotest.(check int) "single run" 1 (List.length r.runs);
  Alcotest.(check string) "winner" "bsolo-lpr" r.winner

let custom_entries () =
  let entry =
    {
      Portfolio.pname = "only-mis";
      psolve =
        (fun ~options problem ->
          Bsolo.Solver.solve
            ~options:{ options with Bsolo.Options.lb_method = Bsolo.Options.Mis }
            problem);
    }
  in
  let r = Portfolio.solve ~entries:[ entry ] ~budget:5.0 (Gen.covering 2) in
  Alcotest.(check string) "winner" "only-mis" r.winner

(* --- result ranking -------------------------------------------------------- *)

let zero_counters =
  {
    Bsolo.Outcome.decisions = 0;
    propagations = 0;
    conflicts = 0;
    bound_conflicts = 0;
    learned = 0;
    restarts = 0;
    lb_calls = 0;
    nodes = 0;
  }

let outcome ?best ?proved_lb status =
  { Bsolo.Outcome.status; best; proved_lb; counters = zero_counters; elapsed = 0.0 }

let better_ranking () =
  let model =
    match Bsolo.Exhaustive.optimum (Gen.covering 0) with
    | Some (m, _) -> m
    | None -> Alcotest.fail "covering 0 should be satisfiable"
  in
  let check msg expected a b =
    Alcotest.(check bool) msg expected (Portfolio.better a b)
  in
  let opt = outcome ~best:(model, 5) Bsolo.Outcome.Optimal in
  let unsat = outcome Bsolo.Outcome.Unsatisfiable in
  let sat c = outcome ~best:(model, c) Bsolo.Outcome.Satisfiable in
  let unk = outcome Bsolo.Outcome.Unknown in
  (* completed proofs outrank a mere model, whatever its cost *)
  check "unsat beats sat" true unsat (sat 0);
  check "optimal beats sat" true opt (sat 0);
  check "sat does not beat unsat" false (sat 0) unsat;
  check "sat beats unknown" true (sat 100) unk;
  check "unknown beats nothing" false unk (sat 100);
  (* within a rank, lower cost wins; ties keep the earlier entry *)
  check "cheaper sat wins" true (sat 3) (sat 7);
  check "costlier sat loses" false (sat 7) (sat 3);
  check "equal cost is a tie" false (sat 3) (sat 3);
  check "model beats no model" true (sat 3) (outcome Bsolo.Outcome.Satisfiable)

(* --- sequential time accounting -------------------------------------------- *)

(* An instant unproved finisher must donate its unused slice: with two
   entries and an 8 s budget the naive split gives each 4 s, but after the
   first returns in ~0 s the survivor should inherit (almost) the full
   budget. *)
let sequential_redistribution () =
  let seen = ref None in
  let instant =
    {
      Portfolio.pname = "instant";
      psolve = (fun ~options:_ _ -> outcome Bsolo.Outcome.Unknown);
    }
  in
  let recorder =
    {
      Portfolio.pname = "recorder";
      psolve =
        (fun ~options _ ->
          seen := options.Bsolo.Options.time_limit;
          outcome Bsolo.Outcome.Unknown);
    }
  in
  let r = Portfolio.solve ~entries:[ instant; recorder ] ~budget:8.0 (Gen.covering 1) in
  Alcotest.(check int) "both ran" 2 (List.length r.runs);
  match !seen with
  | None -> Alcotest.fail "recorder saw no time limit"
  | Some slice ->
    if slice < 6.0 then
      Alcotest.failf "unused remainder not redistributed: slice %.2f < 6.0" slice

(* --- parallel portfolio ---------------------------------------------------- *)

(* Same optimum from the parallel portfolio at any width as from the
   sequential one and from a plain solver call. *)
let jobs_equivalence =
  QCheck.Test.make ~count:8 ~name:"jobs {1,2,4} agree with plain solve"
    QCheck.(int_range 0 40)
    (fun seed ->
      let problem = Gen.covering ~nvars:12 ~nclauses:18 seed in
      let plain = Bsolo.Solver.solve ~options:Bsolo.Options.default problem in
      let reference = Bsolo.Outcome.best_cost plain in
      List.for_all
        (fun jobs ->
          let r = Portfolio.solve ~jobs ~budget:20.0 problem in
          if r.failures <> [] then
            QCheck.Test.fail_reportf "jobs %d: worker crashed: %s" jobs
              (snd (List.hd r.failures));
          let cost = Bsolo.Outcome.best_cost r.outcome in
          if cost <> reference then
            QCheck.Test.fail_reportf "jobs %d: cost %s <> plain %s" jobs
              (match cost with Some c -> string_of_int c | None -> "-")
              (match reference with Some c -> string_of_int c | None -> "-");
          true)
        [ 1; 2; 4 ])

(* A broadcast incumbent must actually prune: an oracle entry publishes
   the known optimum through the shared cell, and the bsolo worker that
   imports it should search strictly less than it does alone. *)
let oracle_broadcast_prunes () =
  let problem = Gen.covering ~nvars:18 ~nclauses:30 5 in
  let model, opt =
    match Bsolo.Exhaustive.optimum problem with
    | Some (m, c) -> m, c
    | None -> Alcotest.fail "instance should be satisfiable"
  in
  let oracle =
    {
      Portfolio.pname = "oracle";
      psolve =
        (fun ~options _ ->
          (match options.Bsolo.Options.on_incumbent with
          | Some publish -> publish model opt
          | None -> Alcotest.fail "parallel portfolio should install on_incumbent");
          (* Unknown, not Satisfiable: a proved status would raise the
             stop flag and cancel the worker under test.  The optimum is
             then established jointly — the oracle holds the model, the
             bsolo worker exhausts under the imported bound. *)
          outcome ~best:(model, opt) Bsolo.Outcome.Unknown);
    }
  in
  let bsolo =
    {
      Portfolio.pname = "bsolo";
      psolve =
        (fun ~options problem ->
          (* Wait for the oracle's broadcast before searching, otherwise
             this worker can race to the optimum on its own and import
             nothing — the very thing the assertions below measure. *)
          (match options.Bsolo.Options.external_incumbent with
          | Some hook ->
            let deadline = Unix.gettimeofday () +. 5.0 in
            while hook () = None && Unix.gettimeofday () < deadline do
              Domain.cpu_relax ()
            done
          | None -> Alcotest.fail "parallel portfolio should install external_incumbent");
          Bsolo.Solver.solve ~options problem);
    }
  in
  let tel = Telemetry.Ctx.create ~timing:false () in
  let r =
    Portfolio.solve ~telemetry:tel ~entries:[ oracle; bsolo ] ~jobs:2 ~budget:20.0 problem
  in
  Alcotest.(check (option string)) "no disagreement" None r.disagreement;
  Alcotest.(check (option int)) "optimal cost" (Some opt) (Bsolo.Outcome.best_cost r.outcome);
  let imports =
    Option.value ~default:0
      (Telemetry.Registry.find_counter tel.registry "portfolio.incumbent_imports")
  in
  if imports < 1 then Alcotest.failf "expected >= 1 incumbent import, got %d" imports;
  let alone = Bsolo.Solver.solve ~options:Bsolo.Options.default problem in
  let with_oracle =
    match List.assoc_opt "bsolo" r.runs with
    | Some o -> o.Bsolo.Outcome.counters.decisions
    | None -> Alcotest.fail "bsolo run missing from report"
  in
  if with_oracle >= alone.counters.decisions then
    Alcotest.failf "broadcast did not prune: %d decisions with oracle, %d alone" with_oracle
      alone.counters.decisions

(* A crashing entry is isolated: reported under [failures], everyone else
   still runs and the portfolio still proves the optimum. *)
let crash_isolation () =
  let boom =
    { Portfolio.pname = "boom"; psolve = (fun ~options:_ _ -> failwith "kaboom") }
  in
  let problem = Gen.covering 2 in
  let r =
    Portfolio.solve ~entries:(boom :: Portfolio.default_entries) ~jobs:2 ~budget:20.0 problem
  in
  (match List.assoc_opt "boom" r.failures with
  | Some msg when String.length msg > 0 -> ()
  | _ -> Alcotest.fail "crash not reported in failures");
  (match r.outcome.status with
  | Bsolo.Outcome.Optimal | Bsolo.Outcome.Unsatisfiable -> ()
  | s -> Alcotest.failf "portfolio did not recover from crash: %s" (Bsolo.Outcome.status_name s));
  Alcotest.(check (option string)) "no disagreement" None r.disagreement

let suite =
  [
    Alcotest.test_case "solves each family" `Slow solves_each_family;
    Alcotest.test_case "agrees with reference" `Slow agrees_with_reference;
    Alcotest.test_case "early stop" `Quick early_stop_on_proof;
    Alcotest.test_case "custom entries" `Quick custom_entries;
    Alcotest.test_case "better ranking" `Quick better_ranking;
    Alcotest.test_case "sequential redistribution" `Quick sequential_redistribution;
    QCheck_alcotest.to_alcotest ~long:true jobs_equivalence;
    Alcotest.test_case "oracle broadcast prunes" `Slow oracle_broadcast_prunes;
    Alcotest.test_case "crash isolation" `Slow crash_isolation;
  ]
