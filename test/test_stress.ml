open Pbo
module Core = Engine.Solver_core

(* reduce_db invoked at arbitrary interior states must preserve slacks,
   reasons and eventual exactness. *)
let reduce_db_mid_search () =
  for seed = 0 to 30 do
    let problem = Gen.problem seed in
    let engine = Core.create problem in
    if not (Core.root_unsat engine) then begin
      let rng = Random.State.make [| seed; 0xdb |] in
      let rec walk fuel =
        if fuel > 0 then begin
          match Core.propagate engine with
          | Some ci ->
            (match Core.resolve_conflict engine ci with
            | Core.Root_conflict -> ()
            | Core.Backjump _ ->
              if Random.State.int rng 3 = 0 then Core.reduce_db engine;
              walk (fuel - 1))
          | None ->
            if Random.State.int rng 5 = 0 then Core.reduce_db engine;
            (match Core.next_branch_var engine with
            | None -> ()
            | Some v ->
              Core.decide engine (Lit.make v (Random.State.bool rng));
              walk (fuel - 1))
        end
      in
      walk 60;
      (* after the walk, slacks must still agree with recomputation *)
      let n = ref 0 in
      Core.iter_constraints engine (fun ~learned:_ _ -> incr n);
      for ci = 0 to !n - 1 do
        let c = Core.constr_of engine ci in
        if Core.slack_of engine ci <> Constr.slack_under (Core.value_lit engine) c then
          Alcotest.failf "seed %d: slack diverged after reduce_db" seed
      done
    end
  done

(* Random non-linear OPB instances: parse, solve, compare with direct
   evaluation of the products over the original variables. *)
let nonlinear_matches_brute () =
  for seed = 0 to 30 do
    let rng = Random.State.make [| seed; 0x217 |] in
    let nvars = 5 in
    let render_lit l =
      (if Lit.is_pos l then "x" else "~x") ^ string_of_int (Lit.var l + 1)
    in
    let random_product () =
      let len = 1 + Random.State.int rng 2 in
      List.init len (fun _ -> Lit.make (Random.State.int rng nvars) (Random.State.bool rng))
      |> List.sort_uniq Lit.compare
    in
    (* avoid products mentioning a variable twice with both polarities *)
    let ok_product p =
      let vars = List.map Lit.var p in
      List.length (List.sort_uniq compare vars) = List.length vars
    in
    let constraints =
      List.init (2 + Random.State.int rng 3) (fun _ ->
          let terms =
            List.init (1 + Random.State.int rng 3) (fun _ ->
                let rec gen () =
                  let p = random_product () in
                  if ok_product p then p else gen ()
                in
                1 + Random.State.int rng 3, gen ())
          in
          let total = List.fold_left (fun acc (c, _) -> acc + c) 0 terms in
          terms, Random.State.int rng (total + 1))
    in
    let buf = Buffer.create 256 in
    List.iter
      (fun (terms, rhs) ->
        List.iter
          (fun (c, p) ->
            Buffer.add_string buf (Printf.sprintf "+%d %s " c (String.concat " " (List.map render_lit p))))
          terms;
        Buffer.add_string buf (Printf.sprintf ">= %d ;\n" rhs))
      constraints;
    let text = Buffer.contents buf in
    let problem = Opb.parse_string text in
    (* brute force over the original 5 variables *)
    let feasible = ref false in
    for mask = 0 to 31 do
      let assign v = (mask lsr v) land 1 = 1 in
      let lit_true l = if Lit.is_pos l then assign (Lit.var l) else not (assign (Lit.var l)) in
      let holds (terms, rhs) =
        List.fold_left
          (fun acc (c, p) -> if List.for_all lit_true p then acc + c else acc)
          0 terms
        >= rhs
      in
      if List.for_all holds constraints then feasible := true
    done;
    let o = Bsolo.Solver.solve problem in
    match o.status, !feasible with
    | (Bsolo.Outcome.Satisfiable | Bsolo.Outcome.Optimal), true -> ()
    | Bsolo.Outcome.Unsatisfiable, false -> ()
    | s, f ->
      Alcotest.failf "seed %d: solver %s, brute %s\n%s" seed (Bsolo.Outcome.status_name s)
        (if f then "SAT" else "UNSAT") text
  done

(* Random heap operation sequences against a naive reference. *)
let heap_random_ops () =
  for seed = 0 to 20 do
    let rng = Random.State.make [| seed; 0x8ea9 |] in
    let n = 12 in
    let h = Engine.Idheap.create n in
    let prio = Array.make n 0. in
    let in_heap = Array.make n false in
    for _ = 1 to 300 do
      match Random.State.int rng 3 with
      | 0 ->
        let k = Random.State.int rng n in
        Engine.Idheap.insert h k;
        in_heap.(k) <- true
      | 1 ->
        let k = Random.State.int rng n in
        let p = Random.State.float rng 10. in
        prio.(k) <- p;
        Engine.Idheap.update h k p
      | _ ->
        if not (Engine.Idheap.is_empty h) then begin
          let top = Engine.Idheap.pop_max h in
          if not in_heap.(top) then Alcotest.failf "seed %d: popped absent key" seed;
          Array.iteri
            (fun k inside ->
              if inside && prio.(k) > prio.(top) +. 1e-12 then
                Alcotest.failf "seed %d: popped %d but %d has higher priority" seed top k)
            in_heap;
          in_heap.(top) <- false
        end
    done
  done

(* Mixed-relation LPs: feasibility must match 0-1 enumeration relaxed to
   reals only in the safe direction (integer-feasible => LP feasible). *)
let simplex_mixed_relations () =
  for seed = 0 to 60 do
    let rng = Random.State.make [| seed; 0x51e |] in
    let nvars = 4 in
    let rows =
      List.init (1 + Random.State.int rng 4) (fun _ ->
          let coeffs =
            List.init (1 + Random.State.int rng 3) (fun _ ->
                Random.State.int rng nvars, float_of_int (1 + Random.State.int rng 3))
          in
          let rel =
            match Random.State.int rng 3 with
            | 0 -> Simplex.Ge
            | 1 -> Simplex.Le
            | _ -> Simplex.Eq
          in
          { Simplex.coeffs = Array.of_list coeffs; rel; rhs = float_of_int (Random.State.int rng 6) })
    in
    let problem =
      {
        Simplex.ncols = nvars;
        lower = Array.make nvars 0.;
        upper = Array.make nvars 1.;
        objective = Array.make nvars 1.;
        rows = Array.of_list rows;
      }
    in
    let int_feasible = ref false in
    for mask = 0 to 15 do
      let x v = float_of_int ((mask lsr v) land 1) in
      let ok (r : Simplex.row) =
        let a = Array.fold_left (fun acc (v, c) -> acc +. (c *. x v)) 0. r.coeffs in
        match r.rel with
        | Simplex.Ge -> a >= r.rhs -. 1e-9
        | Simplex.Le -> a <= r.rhs +. 1e-9
        | Simplex.Eq -> abs_float (a -. r.rhs) < 1e-9
      in
      if List.for_all ok rows then int_feasible := true
    done;
    match Simplex.solve problem with
    | Simplex.Optimal _ -> ()
    | Simplex.Infeasible _ ->
      if !int_feasible then Alcotest.failf "seed %d: LP infeasible but IP feasible" seed
    | Simplex.Unbounded -> Alcotest.failf "seed %d: bounded LP reported unbounded" seed
    | Simplex.Iteration_limit _ -> ()
  done

let suite =
  [
    Alcotest.test_case "reduce_db mid-search" `Slow reduce_db_mid_search;
    Alcotest.test_case "nonlinear opb vs brute" `Slow nonlinear_matches_brute;
    Alcotest.test_case "heap random ops" `Quick heap_random_ops;
    Alcotest.test_case "simplex mixed relations" `Quick simplex_mixed_relations;
  ]

(* The engine's own invariant checker must hold at every point of a
   randomized search walk, including right after conflicts, backjumps,
   restarts and DB reductions. *)
let invariants_along_random_walks () =
  for seed = 0 to 40 do
    let problem = if seed mod 2 = 0 then Gen.problem seed else Gen.covering seed in
    let engine = Core.create problem in
    if not (Core.root_unsat engine) then begin
      let rng = Random.State.make [| seed; 0x1137 |] in
      let assert_ok where =
        match Core.check_invariants engine with
        | Ok () -> ()
        | Error e -> Alcotest.failf "seed %d (%s): %s" seed where e
      in
      assert_ok "initial";
      let rec walk fuel =
        if fuel > 0 && not (Core.root_unsat engine) then begin
          match Core.propagate engine with
          | Some ci ->
            (match Core.resolve_conflict engine ci with
            | Core.Root_conflict -> assert_ok "root conflict"
            | Core.Backjump _ ->
              assert_ok "after analysis";
              if Random.State.int rng 4 = 0 then begin
                Core.restart engine;
                assert_ok "after restart"
              end;
              if Random.State.int rng 4 = 0 then begin
                Core.reduce_db engine;
                assert_ok "after reduce_db"
              end;
              walk (fuel - 1))
          | None ->
            assert_ok "at fixpoint";
            (match Core.next_branch_var engine with
            | None -> ()
            | Some v ->
              Core.decide engine (Lit.make v (Random.State.bool rng));
              walk (fuel - 1))
        end
      in
      walk 80
    end
  done

let suite =
  suite @ [ Alcotest.test_case "engine invariants on walks" `Slow invariants_along_random_walks ]
