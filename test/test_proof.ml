(* Proof logging round-trips: every proof the solver emits must replay
   through the exact checker, and corrupted proofs must be rejected.
   This is the executable statement of the trust model in docs/PROOFS.md:
   the checker, not the solver, is the part you have to believe. *)

open Pbo

let solve_with_proof ?(options = Bsolo.Options.default) problem =
  let buf = Buffer.create 4096 in
  let sink = Proof.Sink.of_buffer buf in
  let logger = Proof.create sink problem in
  let o = Bsolo.Solver.solve ~options:{ options with proof = Some logger } problem in
  Proof.Sink.close sink;
  o, Buffer.contents buf

let check_ok problem text =
  match Proof.Check.check_string problem text with
  | Ok s -> s
  | Error msg -> Alcotest.failf "proof rejected: %s" msg

(* The checked verdict must not claim less than the solver reported:
   an Optimal outcome must replay to OPTIMAL at the same cost, an
   Unsatisfiable one to UNSAT.  Unknown runs may conclude anything the
   steps support (SAT/BOUNDS/NONE). *)
let verdict_matches (o : Bsolo.Outcome.t) (s : Proof.Check.summary) =
  match o.status with
  | Bsolo.Outcome.Optimal ->
    let c = match Bsolo.Outcome.best_cost o with Some c -> c | None -> 0 in
    Alcotest.(check string) "optimal verdict" ("OPTIMAL " ^ string_of_int c) s.verdict
  | Bsolo.Outcome.Unsatisfiable -> Alcotest.(check string) "unsat verdict" "UNSAT" s.verdict
  | Bsolo.Outcome.Satisfiable | Bsolo.Outcome.Unknown -> ()

let roundtrip_seed seed =
  let problem = Gen.problem seed in
  let o, text = solve_with_proof problem in
  verdict_matches o (check_ok problem text)

let roundtrip_covering seed =
  let problem = Gen.covering seed in
  let o, text = solve_with_proof problem in
  verdict_matches o (check_ok problem text)

let roundtrip_random () = for seed = 0 to 39 do roundtrip_seed seed done
let roundtrip_covering_instances () = for seed = 0 to 19 do roundtrip_covering seed done

(* Every lower-bound procedure produces its own certificate shape (LPR
   duals, MIS cover ratios, LGR multipliers, plain path costs); each must
   round-trip, not just the default. *)
let roundtrip_lb_methods () =
  List.iter
    (fun lb ->
      for seed = 0 to 9 do
        let problem = Gen.covering seed in
        let options = Bsolo.Options.with_lb lb in
        let o, text = solve_with_proof ~options problem in
        verdict_matches o (check_ok problem text)
      done)
    [ Bsolo.Options.Plain; Bsolo.Options.Mis; Bsolo.Options.Lgr; Bsolo.Options.Lpr ]

(* qcheck: arbitrary generator seeds, both instance families. *)
let qcheck_roundtrip =
  QCheck2.Test.make ~name:"solver proofs replay through the checker" ~count:60
    QCheck2.Gen.(pair (int_bound 1_000_000) bool)
    (fun (seed, covering) ->
      let problem = if covering then Gen.covering seed else Gen.problem seed in
      let o, text = solve_with_proof problem in
      match Proof.Check.check_string problem text with
      | Error _ -> false
      | Ok s -> (
        match o.status, Bsolo.Outcome.best_cost o with
        | Bsolo.Outcome.Optimal, Some c -> s.verdict = "OPTIMAL " ^ string_of_int c
        | Bsolo.Outcome.Unsatisfiable, _ -> s.verdict = "UNSAT"
        | _ -> true))

(* --- mutation rejection ----------------------------------------------------- *)

(* A proved-Optimal run whose proof we then corrupt.  Gen.covering 1 is
   satisfiable with a nontrivial optimum, so the log carries solution
   steps and an OPTIMAL conclusion. *)
let optimal_proof () =
  let problem = Gen.covering 1 in
  let o, text = solve_with_proof problem in
  (match o.status with
  | Bsolo.Outcome.Optimal -> ()
  | _ -> Alcotest.fail "expected an Optimal run");
  let cost = match Bsolo.Outcome.best_cost o with Some c -> c | None -> 0 in
  problem, text, cost

let lines text = String.split_on_char '\n' text
let unlines ls = String.concat "\n" ls

let reject problem text what =
  match Proof.Check.check_string problem text with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "%s accepted (verdict %s)" what s.verdict

let mutation_dropped_solution () =
  let problem, text, _ = optimal_proof () in
  (* Drop the last verified-solution step: the OPTIMAL conclusion now
     claims a cost no surviving witness reaches. *)
  let ls = lines text in
  let last_s =
    List.fold_left
      (fun (i, best) l ->
        (i + 1, if String.length l >= 2 && String.sub l 0 2 = "s " then Some i else best))
      (0, None) ls
    |> snd
  in
  let last_s = match last_s with Some i -> i | None -> Alcotest.fail "no solution step" in
  let mutated = unlines (List.filteri (fun i _ -> i <> last_s) ls) in
  reject problem mutated "dropped solution step"

let mutation_weakened_conclusion () =
  let problem, text, cost = optimal_proof () in
  (* Claim an optimum one better than anything witnessed. *)
  let target = "c OPTIMAL " ^ string_of_int cost in
  let forged = "c OPTIMAL " ^ string_of_int (cost - 1) in
  let ls =
    List.map (fun l -> if String.trim l = target then forged else l) (lines text)
  in
  let mutated = unlines ls in
  if mutated = text then Alcotest.fail "conclusion line not found";
  reject problem mutated "weakened conclusion"

let mutation_truncated () =
  let problem, text, _ = optimal_proof () in
  (* Cut the log before its conclusion: replay must report truncation. *)
  let ls = List.filter (fun l -> String.trim l = "" || l.[0] <> 'c') (lines text) in
  reject problem (unlines ls) "truncated proof"

(* --- checker cuts mirror the solver's --------------------------------------- *)

let norm_equal a b =
  match a, b with
  | Constr.Trivial_true, Constr.Trivial_true | Constr.Trivial_false, Constr.Trivial_false ->
    true
  | Constr.Constr x, Constr.Constr y -> Constr.equal x y
  | _ -> false

let pp_norm = function
  | Constr.Trivial_true -> "true"
  | Constr.Trivial_false -> "false"
  | Constr.Constr c -> Constr.to_string c

(* The checker recomputes the eq. (10) objective cut itself on every
   verified/imported incumbent, and the eq. (11-13) cardinality cuts on
   [d] steps; both must stay semantically identical to the solver's
   Knapsack module or sound solver prunes would be unjustifiable. *)
let objective_cut_matches () =
  for seed = 0 to 29 do
    let problem = Gen.problem seed in
    let hi = Pbo.Problem.max_cost_sum problem in
    List.iter
      (fun upper ->
        match Proof.objective_cut problem ~upper, Pbo.Problem.is_satisfaction problem with
        | None, true -> ()
        | None, false -> Alcotest.fail "objective cut missing on optimization instance"
        | Some _, true -> Alcotest.fail "objective cut on satisfaction instance"
        | Some n, false ->
          let k = Bsolo.Knapsack.upper_cut problem ~upper in
          if not (norm_equal n k) then
            Alcotest.failf "objective cut mismatch at upper=%d: %s vs %s" upper (pp_norm n)
              (pp_norm k))
      [ 0; 1; (hi / 2) + 1; hi ]
  done

let cardinality_cut_matches () =
  for seed = 0 to 29 do
    let problem = Gen.problem seed in
    let ncons = Array.length (Pbo.Problem.constraints problem) in
    let hi = Pbo.Problem.max_cost_sum problem in
    List.iter
      (fun upper ->
        let expected = Bsolo.Knapsack.cardinality_inferences_cids problem ~upper in
        for cid = 0 to ncons - 1 do
          match Proof.cardinality_cut problem ~cid ~upper, List.assoc_opt cid expected with
          | None, None -> ()
          | Some n, Some k ->
            if not (norm_equal n k) then
              Alcotest.failf "cardinality cut mismatch cid=%d upper=%d: %s vs %s" cid upper
                (pp_norm n) (pp_norm k)
          | Some _, None -> Alcotest.failf "spurious cardinality cut cid=%d upper=%d" cid upper
          | None, Some _ -> Alcotest.failf "missing cardinality cut cid=%d upper=%d" cid upper
        done)
      [ 1; (hi / 2) + 1; hi ]
  done

(* --- portfolio stitching ---------------------------------------------------- *)

let portfolio_proof jobs () =
  let problem = Gen.covering 3 in
  let path = Filename.temp_file "bsolo_test" ".pbp" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let r = Portfolio.solve ~proof_file:path ~jobs ~budget:5.0 problem in
      (match r.Portfolio.outcome.status with
      | Bsolo.Outcome.Optimal -> ()
      | s -> Alcotest.failf "portfolio did not prove: %s" (Bsolo.Outcome.status_name s));
      let cost =
        match Bsolo.Outcome.best_cost r.Portfolio.outcome with Some c -> c | None -> 0
      in
      match Proof.Check.check_file problem path with
      | Error msg -> Alcotest.failf "stitched proof rejected: %s" msg
      | Ok s ->
        Alcotest.(check string) "stitched verdict" ("OPTIMAL " ^ string_of_int cost) s.verdict;
        Alcotest.(check bool) "has sections" true (s.sections <> [] && s.sections <> [ "" ]))

let suite =
  [
    Alcotest.test_case "random instances round-trip" `Quick roundtrip_random;
    Alcotest.test_case "covering instances round-trip" `Quick roundtrip_covering_instances;
    Alcotest.test_case "all lb methods round-trip" `Slow roundtrip_lb_methods;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    Alcotest.test_case "dropped solution step rejected" `Quick mutation_dropped_solution;
    Alcotest.test_case "weakened conclusion rejected" `Quick mutation_weakened_conclusion;
    Alcotest.test_case "truncated proof rejected" `Quick mutation_truncated;
    Alcotest.test_case "objective cut mirrors knapsack" `Quick objective_cut_matches;
    Alcotest.test_case "cardinality cuts mirror knapsack" `Quick cardinality_cut_matches;
    Alcotest.test_case "sequential portfolio proof stitches" `Quick (portfolio_proof 1);
    Alcotest.test_case "parallel portfolio proof stitches" `Quick (portfolio_proof 2);
  ]
