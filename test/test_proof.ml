(* Proof logging round-trips: every proof the solver emits must replay
   through the exact checker, and corrupted proofs must be rejected.
   This is the executable statement of the trust model in docs/PROOFS.md:
   the checker, not the solver, is the part you have to believe. *)

open Pbo

let solve_with_proof ?(options = Bsolo.Options.default) problem =
  let buf = Buffer.create 4096 in
  let sink = Proof.Sink.of_buffer buf in
  let logger = Proof.create sink problem in
  let o = Bsolo.Solver.solve ~options:{ options with proof = Some logger } problem in
  Proof.Sink.close sink;
  o, Buffer.contents buf

let check_ok problem text =
  match Proof.Check.check_string problem text with
  | Ok s -> s
  | Error msg -> Alcotest.failf "proof rejected: %s" msg

(* The checked verdict must not claim less than the solver reported:
   an Optimal outcome must replay to OPTIMAL at the same cost, an
   Unsatisfiable one to UNSAT.  Unknown runs may conclude anything the
   steps support (SAT/BOUNDS/NONE). *)
let verdict_matches (o : Bsolo.Outcome.t) (s : Proof.Check.summary) =
  match o.status with
  | Bsolo.Outcome.Optimal ->
    let c = match Bsolo.Outcome.best_cost o with Some c -> c | None -> 0 in
    Alcotest.(check string) "optimal verdict" ("OPTIMAL " ^ string_of_int c) s.verdict
  | Bsolo.Outcome.Unsatisfiable -> Alcotest.(check string) "unsat verdict" "UNSAT" s.verdict
  | Bsolo.Outcome.Satisfiable | Bsolo.Outcome.Unknown -> ()

let roundtrip_seed seed =
  let problem = Gen.problem seed in
  let o, text = solve_with_proof problem in
  verdict_matches o (check_ok problem text)

let roundtrip_covering seed =
  let problem = Gen.covering seed in
  let o, text = solve_with_proof problem in
  verdict_matches o (check_ok problem text)

let roundtrip_random () = for seed = 0 to 39 do roundtrip_seed seed done
let roundtrip_covering_instances () = for seed = 0 to 19 do roundtrip_covering seed done

(* Every lower-bound procedure produces its own certificate shape (LPR
   duals, MIS cover ratios, LGR multipliers, plain path costs); each must
   round-trip, not just the default. *)
let roundtrip_lb_methods () =
  List.iter
    (fun lb ->
      for seed = 0 to 9 do
        let problem = Gen.covering seed in
        let options = Bsolo.Options.with_lb lb in
        let o, text = solve_with_proof ~options problem in
        verdict_matches o (check_ok problem text)
      done)
    [ Bsolo.Options.Plain; Bsolo.Options.Mis; Bsolo.Options.Lgr; Bsolo.Options.Lpr ]

(* qcheck: arbitrary generator seeds, both instance families. *)
let qcheck_roundtrip =
  QCheck2.Test.make ~name:"solver proofs replay through the checker" ~count:60
    QCheck2.Gen.(pair (int_bound 1_000_000) bool)
    (fun (seed, covering) ->
      let problem = if covering then Gen.covering seed else Gen.problem seed in
      let o, text = solve_with_proof problem in
      match Proof.Check.check_string problem text with
      | Error _ -> false
      | Ok s -> (
        match o.status, Bsolo.Outcome.best_cost o with
        | Bsolo.Outcome.Optimal, Some c -> s.verdict = "OPTIMAL " ^ string_of_int c
        | Bsolo.Outcome.Unsatisfiable, _ -> s.verdict = "UNSAT"
        | _ -> true))

(* --- mutation rejection ----------------------------------------------------- *)

(* A proved-Optimal run whose proof we then corrupt.  Gen.covering 1 is
   satisfiable with a nontrivial optimum, so the log carries solution
   steps and an OPTIMAL conclusion. *)
let optimal_proof () =
  let problem = Gen.covering 1 in
  let o, text = solve_with_proof problem in
  (match o.status with
  | Bsolo.Outcome.Optimal -> ()
  | _ -> Alcotest.fail "expected an Optimal run");
  let cost = match Bsolo.Outcome.best_cost o with Some c -> c | None -> 0 in
  problem, text, cost

let lines text = String.split_on_char '\n' text
let unlines ls = String.concat "\n" ls

let reject problem text what =
  match Proof.Check.check_string problem text with
  | Error _ -> ()
  | Ok s -> Alcotest.failf "%s accepted (verdict %s)" what s.verdict

let mutation_dropped_solution () =
  let problem, text, _ = optimal_proof () in
  (* Drop the last verified-solution step: the OPTIMAL conclusion now
     claims a cost no surviving witness reaches. *)
  let ls = lines text in
  let last_s =
    List.fold_left
      (fun (i, best) l ->
        (i + 1, if String.length l >= 2 && String.sub l 0 2 = "s " then Some i else best))
      (0, None) ls
    |> snd
  in
  let last_s = match last_s with Some i -> i | None -> Alcotest.fail "no solution step" in
  let mutated = unlines (List.filteri (fun i _ -> i <> last_s) ls) in
  reject problem mutated "dropped solution step"

let mutation_weakened_conclusion () =
  let problem, text, cost = optimal_proof () in
  (* Claim an optimum one better than anything witnessed. *)
  let target = "c OPTIMAL " ^ string_of_int cost in
  let forged = "c OPTIMAL " ^ string_of_int (cost - 1) in
  let ls =
    List.map (fun l -> if String.trim l = target then forged else l) (lines text)
  in
  let mutated = unlines ls in
  if mutated = text then Alcotest.fail "conclusion line not found";
  reject problem mutated "weakened conclusion"

let mutation_truncated () =
  let problem, text, _ = optimal_proof () in
  (* Cut the log before its conclusion: replay must report truncation. *)
  let ls = List.filter (fun l -> String.trim l = "" || l.[0] <> 'c') (lines text) in
  reject problem (unlines ls) "truncated proof"

(* --- checker cuts mirror the solver's --------------------------------------- *)

let norm_equal a b =
  match a, b with
  | Constr.Trivial_true, Constr.Trivial_true | Constr.Trivial_false, Constr.Trivial_false ->
    true
  | Constr.Constr x, Constr.Constr y -> Constr.equal x y
  | _ -> false

let pp_norm = function
  | Constr.Trivial_true -> "true"
  | Constr.Trivial_false -> "false"
  | Constr.Constr c -> Constr.to_string c

(* The checker recomputes the eq. (10) objective cut itself on every
   verified/imported incumbent, and the eq. (11-13) cardinality cuts on
   [d] steps; both must stay semantically identical to the solver's
   Knapsack module or sound solver prunes would be unjustifiable. *)
let objective_cut_matches () =
  for seed = 0 to 29 do
    let problem = Gen.problem seed in
    let hi = Pbo.Problem.max_cost_sum problem in
    List.iter
      (fun upper ->
        match Proof.objective_cut problem ~upper, Pbo.Problem.is_satisfaction problem with
        | None, true -> ()
        | None, false -> Alcotest.fail "objective cut missing on optimization instance"
        | Some _, true -> Alcotest.fail "objective cut on satisfaction instance"
        | Some n, false ->
          let k = Bsolo.Knapsack.upper_cut problem ~upper in
          if not (norm_equal n k) then
            Alcotest.failf "objective cut mismatch at upper=%d: %s vs %s" upper (pp_norm n)
              (pp_norm k))
      [ 0; 1; (hi / 2) + 1; hi ]
  done

let cardinality_cut_matches () =
  for seed = 0 to 29 do
    let problem = Gen.problem seed in
    let ncons = Array.length (Pbo.Problem.constraints problem) in
    let hi = Pbo.Problem.max_cost_sum problem in
    List.iter
      (fun upper ->
        let expected = Bsolo.Knapsack.cardinality_inferences_cids problem ~upper in
        for cid = 0 to ncons - 1 do
          match Proof.cardinality_cut problem ~cid ~upper, List.assoc_opt cid expected with
          | None, None -> ()
          | Some n, Some k ->
            if not (norm_equal n k) then
              Alcotest.failf "cardinality cut mismatch cid=%d upper=%d: %s vs %s" cid upper
                (pp_norm n) (pp_norm k)
          | Some _, None -> Alcotest.failf "spurious cardinality cut cid=%d upper=%d" cid upper
          | None, Some _ -> Alcotest.failf "missing cardinality cut cid=%d upper=%d" cid upper
        done)
      [ 1; (hi / 2) + 1; hi ]
  done

(* --- cutting-planes [j] steps ----------------------------------------------- *)

(* log_derived computes the combination exactly as the checker replays
   it: weakening 7x0 + 3~x1 + 3x2 + 2x3 >= 7 with literal axioms down
   to raw coefficients 7/2/3/2 and ceiling-dividing by 1 must land on
   the sequentially-tightened constraint, and the emitted log must
   check. *)
let j_step_roundtrip () =
  let b = Pbo.Problem.Builder.create ~nvars:4 () in
  Pbo.Problem.Builder.add_ge b
    [ (7, Pbo.Lit.pos 0); (3, Pbo.Lit.neg 1); (3, Pbo.Lit.pos 2); (2, Pbo.Lit.pos 3) ]
    7;
  let problem = Pbo.Problem.Builder.build b in
  let buf = Buffer.create 256 in
  let sink = Proof.Sink.of_buffer buf in
  let logger = Proof.create sink problem in
  (match
     Proof.log_derived logger
       ~refs:[ (Proof.Rcid 0, 1); (Proof.Rlit (Pbo.Lit.pos 1), 1) ]
       ~divisor:1
   with
  | None -> Alcotest.fail "valid j step refused"
  | Some (k, c) ->
    Alcotest.(check int) "first derived index" 0 k;
    (match Pbo.Constr.make_ge [ (7, Pbo.Lit.pos 0); (2, Pbo.Lit.neg 1); (3, Pbo.Lit.pos 2); (2, Pbo.Lit.pos 3) ] 6 with
    | Pbo.Constr.Constr expect ->
      Alcotest.(check bool) "derived constraint" true (Pbo.Constr.equal c expect)
    | _ -> Alcotest.fail "expected normal form"));
  (* an unresolvable reference or bad divisor writes nothing *)
  (match Proof.log_derived logger ~refs:[ (Proof.Rderived 7, 1) ] ~divisor:1 with
  | None -> ()
  | Some _ -> Alcotest.fail "dangling derived ref accepted");
  (match Proof.log_derived logger ~refs:[ (Proof.Rcid 0, 1) ] ~divisor:0 with
  | None -> ()
  | Some _ -> Alcotest.fail "non-positive divisor accepted");
  Proof.log_conclusion logger Proof.No_claim;
  Proof.Sink.close sink;
  match Proof.Check.check_string problem (Buffer.contents buf) with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "j-step log rejected: %s" msg

(* Weakened-derivation mutation: default options now run certified
   presolve and cut separation, so solver logs carry [j] steps whose
   derived constraints later steps depend on (through the cid alias map
   and bound-conflict certificates).  Doubling a [j] divisor weakens the
   derived constraint; across the corpus at least one such forgery must
   be caught, and none may crash the checker. *)
let mutation_weakened_derivation () =
  let is_j l = String.length l >= 2 && String.sub l 0 2 = "j " in
  let with_j = ref 0 and zeroed_caught = ref 0 and dropped_caught = ref 0 in
  for seed = 0 to 24 do
    let problem = Gen.problem seed in
    let _, text = solve_with_proof problem in
    let ls = lines text in
    let first_j = ref (-1) in
    List.iteri (fun i l -> if !first_j < 0 && is_j l then first_j := i) ls;
    if !first_j >= 0 then begin
      incr with_j;
      (* a non-positive divisor no longer justifies the division *)
      let zeroed =
        List.mapi
          (fun i l ->
            if i = !first_j then begin
              match String.rindex_opt l ' ' with
              | Some sp -> String.sub l 0 (sp + 1) ^ "0"
              | None -> l
            end
            else l)
          ls
      in
      (match Proof.Check.check_string problem (unlines zeroed) with
      | Error _ -> incr zeroed_caught
      | Ok _ -> ());
      (* pointing the step at a derived constraint that does not exist
         leaves the combination unresolvable *)
      let dangling =
        List.mapi
          (fun i l ->
            if i = !first_j then begin
              match String.split_on_char ' ' l with
              | "j" :: _ :: rest -> String.concat " " ("j" :: "x9999:1" :: rest)
              | _ -> l
            end
            else l)
          ls
      in
      match Proof.Check.check_string problem (unlines dangling) with
      | Error _ -> incr dropped_caught
      | Ok _ -> ()
    end
  done;
  Alcotest.(check bool) "corpus contains j steps" true (!with_j > 0);
  Alcotest.(check int) "every zeroed divisor caught" !with_j !zeroed_caught;
  Alcotest.(check int) "every dangling reference caught" !with_j !dropped_caught

(* --- portfolio stitching ---------------------------------------------------- *)

let portfolio_proof jobs () =
  let problem = Gen.covering 3 in
  let path = Filename.temp_file "bsolo_test" ".pbp" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let r = Portfolio.solve ~proof_file:path ~jobs ~budget:5.0 problem in
      (match r.Portfolio.outcome.status with
      | Bsolo.Outcome.Optimal -> ()
      | s -> Alcotest.failf "portfolio did not prove: %s" (Bsolo.Outcome.status_name s));
      let cost =
        match Bsolo.Outcome.best_cost r.Portfolio.outcome with Some c -> c | None -> 0
      in
      match Proof.Check.check_file problem path with
      | Error msg -> Alcotest.failf "stitched proof rejected: %s" msg
      | Ok s ->
        Alcotest.(check string) "stitched verdict" ("OPTIMAL " ^ string_of_int cost) s.verdict;
        Alcotest.(check bool) "has sections" true (s.sections <> [] && s.sections <> [ "" ]))

let suite =
  [
    Alcotest.test_case "random instances round-trip" `Quick roundtrip_random;
    Alcotest.test_case "covering instances round-trip" `Quick roundtrip_covering_instances;
    Alcotest.test_case "all lb methods round-trip" `Slow roundtrip_lb_methods;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    Alcotest.test_case "dropped solution step rejected" `Quick mutation_dropped_solution;
    Alcotest.test_case "weakened conclusion rejected" `Quick mutation_weakened_conclusion;
    Alcotest.test_case "truncated proof rejected" `Quick mutation_truncated;
    Alcotest.test_case "objective cut mirrors knapsack" `Quick objective_cut_matches;
    Alcotest.test_case "cardinality cuts mirror knapsack" `Quick cardinality_cut_matches;
    Alcotest.test_case "j steps round-trip" `Quick j_step_roundtrip;
    Alcotest.test_case "weakened derivation rejected" `Quick mutation_weakened_derivation;
    Alcotest.test_case "sequential portfolio proof stitches" `Quick (portfolio_proof 1);
    Alcotest.test_case "parallel portfolio proof stitches" `Quick (portfolio_proof 2);
  ]
