(* The embedded observability server: request parsing, endpoint
   behaviour over real sockets, the /metrics ≡ textfile byte-equality
   guarantee, healthz staleness, slow-client drop accounting and
   concurrent scrapers.  Every server test binds 127.0.0.1 port 0. *)

module T = Telemetry

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let tmp_file suffix =
  let path = Filename.temp_file "bsolo-obsd" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* --- request parsing --------------------------------------------------------- *)

let parse_ok () =
  (match Obsd.Http.parse_request "GET /metrics HTTP/1.1\r\nHost: x\r\n" with
  | Ok r ->
    Alcotest.(check string) "meth" "GET" r.Obsd.Http.meth;
    Alcotest.(check string) "path" "/metrics" r.path;
    Alcotest.(check string) "version" "HTTP/1.1" r.version
  | Error s -> Alcotest.failf "rejected with %d" s);
  (match Obsd.Http.parse_request "GET /status?pretty=1 HTTP/1.0" with
  | Ok r -> Alcotest.(check string) "query stripped" "/status" r.path
  | Error s -> Alcotest.failf "1.0 rejected with %d" s)

let parse_errors () =
  let status head =
    match Obsd.Http.parse_request head with Ok _ -> 200 | Error s -> s
  in
  Alcotest.(check int) "POST is 405" 405 (status "POST /metrics HTTP/1.1");
  Alcotest.(check int) "DELETE is 405" 405 (status "DELETE /x HTTP/1.1");
  Alcotest.(check int) "relative target is 400" 400 (status "GET metrics HTTP/1.1");
  Alcotest.(check int) "garbage method is 400" 400 (status "ge!t / HTTP/1.1");
  Alcotest.(check int) "missing version is 400" 400 (status "GET /metrics");
  Alcotest.(check int) "extra fields are 400" 400 (status "GET /a b HTTP/1.1");
  Alcotest.(check int) "empty head is 400" 400 (status "");
  Alcotest.(check int) "future version is 505" 505 (status "GET /x HTTP/2.0");
  Alcotest.(check int) "ancient version is 505" 505 (status "GET /x HTTP/0.9");
  Alcotest.(check int) "non-HTTP protocol is 400" 400 (status "GET /x GOPHER/1.1");
  Alcotest.(check int) "oversized target is 414" 414
    (status ("GET /" ^ String.make 4096 'a' ^ " HTTP/1.1"))

let sse_frame_format () =
  Alcotest.(check string) "single-line data" "event: heartbeat\ndata: {\"t\":1}\n\n"
    (Obsd.Http.sse_frame ~event:"heartbeat" ~data:"{\"t\":1}");
  Alcotest.(check string) "multi-line data splits into data: fields"
    "event: log\ndata: a\ndata: b\n\n"
    (Obsd.Http.sse_frame ~event:"log" ~data:"a\nb")

let parse_addr () =
  (match Obsd.Client.parse_addr "127.0.0.1:8080" with
  | Ok (h, p) ->
    Alcotest.(check string) "host" "127.0.0.1" h;
    Alcotest.(check int) "port" 8080 p
  | Error e -> Alcotest.fail e);
  (match Obsd.Client.parse_addr ":9" with
  | Ok (h, p) ->
    Alcotest.(check string) "empty host is loopback" "127.0.0.1" h;
    Alcotest.(check int) "port" 9 p
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "no colon rejected" true
    (Result.is_error (Obsd.Client.parse_addr "localhost"));
  Alcotest.(check bool) "bad port rejected" true
    (Result.is_error (Obsd.Client.parse_addr "h:x"));
  Alcotest.(check bool) "huge port rejected" true
    (Result.is_error (Obsd.Client.parse_addr "h:70000"))

(* --- server endpoints over real sockets -------------------------------------- *)

let with_server ?stall_after ~metrics ~status f =
  let srv =
    Obsd.Server.create ~host:"127.0.0.1" ~port:0 ~metrics ~status ?stall_after ()
  in
  Fun.protect ~finally:(fun () -> Obsd.Server.stop srv) (fun () -> f srv)

let get srv path =
  match Obsd.Client.get ~host:"127.0.0.1" ~port:(Obsd.Server.port srv) path with
  | Ok (status, body) -> status, body
  | Error e -> Alcotest.failf "GET %s: %s" path e

let endpoints_roundtrip () =
  with_server
    ~metrics:(fun () -> "# HELP x solver counter x\n# TYPE x counter\nx 1\n")
    ~status:(fun () -> "{\"schema\":\"bsolo-status/1\"}")
  @@ fun srv ->
  let st, body = get srv "/metrics" in
  Alcotest.(check int) "metrics 200" 200 st;
  Alcotest.(check bool) "metrics body" true (contains body "x 1");
  let st, body = get srv "/status" in
  Alcotest.(check int) "status 200" 200 st;
  Alcotest.(check bool) "status body" true (contains body "bsolo-status/1");
  let st, _ = get srv "/healthz" in
  Alcotest.(check int) "healthz 200 without stall_after" 200 st;
  let st, _ = get srv "/nope" in
  Alcotest.(check int) "unknown path 404" 404 st;
  let stats = Obsd.Server.stats srv in
  Alcotest.(check bool) "requests counted" true (stats.Obsd.Server.served >= 4)

(* A raw (non-Client) request exercises the error statuses end to end. *)
let raw_request srv req =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Obsd.Server.port srv));
  let rec write off =
    if off < String.length req then
      write (off + Unix.write_substring fd req off (String.length req - off))
  in
  write 0;
  let b = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec read () =
    match Unix.read fd chunk 0 512 with
    | 0 -> Buffer.contents b
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      read ()
  in
  read ()

let wire_error_statuses () =
  with_server ~metrics:(fun () -> "") ~status:(fun () -> "{}")
  @@ fun srv ->
  let resp = raw_request srv "POST /metrics HTTP/1.1\r\n\r\n" in
  Alcotest.(check bool) "405 on the wire" true (contains resp "405 Method Not Allowed");
  let resp = raw_request srv "GET /x HTTP/3.0\r\n\r\n" in
  Alcotest.(check bool) "505 on the wire" true (contains resp "505");
  let resp = raw_request srv "complete garbage\r\n\r\n" in
  Alcotest.(check bool) "400 on the wire" true (contains resp "400 Bad Request");
  let resp = raw_request srv ("GET / HTTP/1.1\r\nX: " ^ String.make 9000 'y' ^ "\r\n\r\n") in
  Alcotest.(check bool) "431 on oversized head" true (contains resp "431")

(* The load-bearing equality: GET /metrics and the --metrics textfile
   render the same source list through the same renderer, so their bytes
   match — including multi-registry (live portfolio member) sources. *)
let metrics_equals_textfile () =
  let main = T.Registry.create () in
  T.Counter.add (T.Registry.counter main "search.nodes") 42;
  T.Gauge.set (T.Registry.gauge main "lp.objective") 2.5;
  let h = T.Registry.histogram main "lb.value" in
  T.Histogram.observe h 1;
  T.Histogram.observe h 9;
  let member = T.Registry.create () in
  T.Counter.add (T.Registry.counter member "bcp.visits") 7;
  let sources () = [ "", main; "portfolio.bsolo-lpr.", member ] in
  with_server
    ~metrics:(fun () -> T.Promtext.render_sources (sources ()))
    ~status:(fun () -> "{}")
  @@ fun srv ->
  let st, scraped = get srv "/metrics" in
  Alcotest.(check int) "200" 200 st;
  let path = tmp_file ".prom" in
  T.Promtext.write_file_sources path (sources ());
  let ic = open_in_bin path in
  let file = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "scrape is byte-identical to the textfile" file scraped;
  (match T.Promtext.lint scraped with
  | Ok n -> Alcotest.(check bool) "lint-clean with samples" true (n > 0)
  | Error vs -> Alcotest.failf "lint violations: %s" (String.concat "; " vs));
  Alcotest.(check bool) "member metrics under the merge prefix" true
    (contains scraped "bsolo_portfolio_bsolo_lpr_bcp_visits 7")

let healthz_flips_on_stall () =
  with_server ~stall_after:0.25 ~metrics:(fun () -> "") ~status:(fun () -> "{}")
  @@ fun srv ->
  Obsd.Server.beat srv;
  let st, _ = get srv "/healthz" in
  Alcotest.(check int) "beating engine is healthy" 200 st;
  (* Deliberately stalled engine: no beats for > stall_after. *)
  Unix.sleepf 0.4;
  let st, body = get srv "/healthz" in
  Alcotest.(check int) "stalled engine is 503" 503 st;
  Alcotest.(check bool) "says stalled" true (contains body "stalled");
  Obsd.Server.beat srv;
  let st, _ = get srv "/healthz" in
  Alcotest.(check int) "recovers on the next beat" 200 st

(* A subscriber that never reads: publishes far beyond its bounded queue
   must be dropped and counted, never block the publisher. *)
let slow_client_drops () =
  with_server ~metrics:(fun () -> "") ~status:(fun () -> "{}")
  @@ fun srv ->
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Obsd.Server.port srv));
  let req = "GET /events HTTP/1.1\r\n\r\n" in
  ignore (Unix.write_substring fd req 0 (String.length req));
  Unix.sleepf 0.2 (* let the server register the subscriber *);
  (* Big frames fill the kernel socket buffer fast; after that the
     bounded queue (64 frames) absorbs a little and the rest must drop. *)
  let data = String.make 65536 'x' in
  let deadline = Unix.gettimeofday () +. 5. in
  let rec pump i =
    if Obsd.Server.((stats srv).dropped) > 0 || Unix.gettimeofday () > deadline then i
    else begin
      Obsd.Server.publish srv ~event:"heartbeat" ~data;
      if i mod 16 = 0 then Unix.sleepf 0.01;
      pump (i + 1)
    end
  in
  let published = pump 1 in
  let stats = Obsd.Server.stats srv in
  Alcotest.(check bool)
    (Printf.sprintf "drops counted after %d publishes (dropped=%d)" published
       stats.Obsd.Server.dropped)
    true (stats.dropped > 0)

(* SSE round trip: subscribe, receive heartbeats, then the final end
   event published by stop's grace-window flush. *)
let sse_stream_roundtrip () =
  let srv =
    Obsd.Server.create ~host:"127.0.0.1" ~port:0
      ~metrics:(fun () -> "")
      ~status:(fun () -> "{}")
      ()
  in
  let port = Obsd.Server.port srv in
  let events = Atomic.make [] in
  let reader =
    Domain.spawn (fun () ->
        Obsd.Client.events ~host:"127.0.0.1" ~port
          ~on_event:(fun ~event ~data ->
            Atomic.set events ((event, data) :: Atomic.get events);
            event <> "end")
          ())
  in
  (* Wait for the subscription to land (stats shows the request). *)
  let deadline = Unix.gettimeofday () +. 5. in
  while Obsd.Server.((stats srv).served) < 1 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.02
  done;
  Unix.sleepf 0.1;
  Obsd.Server.publish srv ~event:"heartbeat" ~data:"{\"seq\":0}";
  Obsd.Server.publish srv ~event:"heartbeat" ~data:"{\"seq\":1}";
  Obsd.Server.publish srv ~event:"incumbent" ~data:"{\"cost\":7}";
  Unix.sleepf 0.2 (* let the loop flush before the stop grace window *);
  Obsd.Server.stop ~final_event:("end", "{\"run_id\":\"t\"}") srv;
  (match Domain.join reader with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reader failed: %s" e);
  let seen = List.rev (Atomic.get events) in
  let count ev = List.length (List.filter (fun (e, _) -> e = ev) seen) in
  Alcotest.(check int) "two heartbeats" 2 (count "heartbeat");
  Alcotest.(check int) "one incumbent" 1 (count "incumbent");
  Alcotest.(check int) "final end event" 1 (count "end");
  match List.rev seen with
  | ("end", data) :: _ -> Alcotest.(check bool) "end carries run id" true (contains data "run_id")
  | _ -> Alcotest.fail "end was not the last event"

(* Concurrent scrapers against live render callbacks: every response is
   a complete, parseable exposition — no torn or interleaved bodies. *)
let concurrent_scrapers () =
  let reg = T.Registry.create () in
  let cnt = T.Registry.counter reg "search.nodes" in
  with_server
    ~metrics:(fun () -> T.Promtext.render reg)
    ~status:(fun () -> "{\"schema\":\"bsolo-status/1\"}")
  @@ fun srv ->
  let port = Obsd.Server.port srv in
  let scraper _ =
    Domain.spawn (fun () ->
        let ok = ref 0 in
        for i = 1 to 10 do
          let path = if i mod 2 = 0 then "/metrics" else "/status" in
          match Obsd.Client.get ~host:"127.0.0.1" ~port path with
          | Ok (200, body) ->
            let clean =
              if path = "/metrics" then Result.is_ok (T.Promtext.lint body)
              else contains body "bsolo-status/1"
            in
            if clean then incr ok
          | Ok _ | Error _ -> ()
        done;
        !ok)
  in
  let writer =
    Domain.spawn (fun () ->
        for _ = 1 to 2000 do
          T.Counter.incr cnt;
          Obsd.Server.publish srv ~event:"heartbeat" ~data:"{}"
        done)
  in
  let domains = List.init 4 scraper in
  let oks = List.map Domain.join domains in
  Domain.join writer;
  List.iteri
    (fun i ok -> Alcotest.(check int) (Printf.sprintf "scraper %d all clean" i) 10 ok)
    oks

(* --- suite ------------------------------------------------------------------- *)

let suite =
  [
    Alcotest.test_case "http: well-formed requests parse" `Quick parse_ok;
    Alcotest.test_case "http: bad method/path/version statuses" `Quick parse_errors;
    Alcotest.test_case "http: SSE frame format" `Quick sse_frame_format;
    Alcotest.test_case "client: HOST:PORT parsing" `Quick parse_addr;
    Alcotest.test_case "server: endpoint round trip" `Quick endpoints_roundtrip;
    Alcotest.test_case "server: error statuses on the wire" `Quick wire_error_statuses;
    Alcotest.test_case "server: /metrics byte-identical to textfile" `Quick
      metrics_equals_textfile;
    Alcotest.test_case "server: /healthz flips on a stalled engine" `Quick healthz_flips_on_stall;
    Alcotest.test_case "server: slow client drops are counted" `Quick slow_client_drops;
    Alcotest.test_case "server: SSE stream round trip" `Quick sse_stream_roundtrip;
    Alcotest.test_case "server: concurrent scrapers" `Quick concurrent_scrapers;
  ]
