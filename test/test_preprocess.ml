open Pbo
module Core = Engine.Solver_core

let finds_failed_literal () =
  (* x0=1 forces a conflict: (x0 -> x1) and (x0 -> ~x1) *)
  let b = Problem.Builder.create ~nvars:2 () in
  Problem.Builder.add_clause b [ Lit.neg 0; Lit.pos 1 ];
  Problem.Builder.add_clause b [ Lit.neg 0; Lit.neg 1 ];
  let p = Problem.Builder.build b in
  let engine = Core.create p in
  let n = Bsolo.Preprocess.probe engine in
  Alcotest.(check bool) "found at least one" true (n >= 1);
  Alcotest.(check bool) "x0 fixed false" true
    (Value.equal (Core.value_var engine 0) Value.False)

let detects_unsat_by_probing () =
  (* both polarities of x0 fail *)
  let b = Problem.Builder.create ~nvars:2 () in
  Problem.Builder.add_clause b [ Lit.neg 0; Lit.pos 1 ];
  Problem.Builder.add_clause b [ Lit.neg 0; Lit.neg 1 ];
  Problem.Builder.add_clause b [ Lit.pos 0; Lit.pos 1 ];
  Problem.Builder.add_clause b [ Lit.pos 0; Lit.neg 1 ];
  let p = Problem.Builder.build b in
  let engine = Core.create p in
  ignore (Bsolo.Preprocess.probe engine);
  Alcotest.(check bool) "unsat detected" true (Core.root_unsat engine)

let preserves_optimum () =
  for seed = 0 to 50 do
    let problem = Gen.problem seed in
    let reference = Bsolo.Exhaustive.optimum problem in
    let with_pre =
      Bsolo.Solver.solve ~options:{ Bsolo.Options.default with preprocess = true } problem
    in
    let without =
      Bsolo.Solver.solve ~options:{ Bsolo.Options.default with preprocess = false } problem
    in
    let cost (o : Bsolo.Outcome.t) = Bsolo.Outcome.best_cost o in
    (match reference, cost with_pre, cost without with
    | None, None, None -> ()
    | Some (_, opt), Some c1, Some c2 ->
      if c1 <> opt || c2 <> opt then Alcotest.failf "seed %d: optimum changed" seed
    | _, _, _ -> Alcotest.failf "seed %d: status mismatch" seed)
  done

let idempotent_on_clean_instance () =
  let p = Gen.covering 5 in
  let engine = Core.create p in
  ignore (Bsolo.Preprocess.probe engine);
  let n2 = Bsolo.Preprocess.probe engine in
  Alcotest.(check int) "second pass finds nothing new" 0 n2;
  Alcotest.(check bool) "still at level 0" true (Core.decision_level engine = 0)

(* --- exact presolve --------------------------------------------------------- *)

(* Presolve must preserve the full 0/1 solution set, not just the
   optimum: exhaustive model counts before and after must agree. *)
let presolve_preserves_solution_set () =
  for seed = 0 to 80 do
    let problem = Gen.problem seed in
    if not (Problem.trivially_unsat problem) then begin
      let r = Bsolo.Preprocess.presolve problem in
      let before = Bsolo.Exhaustive.count_models problem in
      let after = Bsolo.Exhaustive.count_models r.reduced in
      if before <> after then
        Alcotest.failf "seed %d: presolve changed the model count (%d -> %d)" seed before after;
      (match Bsolo.Exhaustive.optimum problem, Bsolo.Exhaustive.optimum r.reduced with
      | None, None -> ()
      | Some (_, a), Some (_, b) when a = b -> ()
      | _ -> Alcotest.failf "seed %d: presolve changed the optimum" seed);
      Alcotest.(check int) "cid_map covers surviving constraints"
        (Array.length (Problem.constraints r.reduced))
        (Array.length r.cid_map)
    end
  done

(* Regression for the simultaneous-weakening bug: in
   7 x0 + 3 ~x1 + 3 x2 + 2 x3 >= 7 each 3-coefficient can be reduced to
   2 *individually* but not both at once (the point x0=0, ~x1=x2=x3=1
   reaches 8 >= 7 and must survive).  Reductions are sequential. *)
let presolve_sequential_tightening () =
  let b = Problem.Builder.create ~nvars:4 () in
  Problem.Builder.add_ge b [ (7, Lit.pos 0); (3, Lit.neg 1); (3, Lit.pos 2); (2, Lit.pos 3) ] 7;
  let problem = Problem.Builder.build b in
  let r = Bsolo.Preprocess.presolve problem in
  Alcotest.(check bool) "something tightened" true (r.tightened >= 1);
  Alcotest.(check int) "solution set preserved"
    (Bsolo.Exhaustive.count_models problem)
    (Bsolo.Exhaustive.count_models r.reduced)

let presolve_removes_dominated () =
  (* 2x0 + 2x1 >= 2 dominates x0 + x1 >= 1 (they are equivalent);
     exactly one survives. *)
  let b = Problem.Builder.create ~nvars:2 () in
  Problem.Builder.add_ge b [ (2, Lit.pos 0); (2, Lit.pos 1) ] 2;
  Problem.Builder.add_ge b [ (1, Lit.pos 0); (1, Lit.pos 1) ] 1;
  let problem = Problem.Builder.build b in
  let r = Bsolo.Preprocess.presolve problem in
  Alcotest.(check int) "one constraint removed" 1 r.removed;
  Alcotest.(check int) "one survivor" 1 (Array.length (Problem.constraints r.reduced))

(* Certified mode: every accepted tightening writes a [j] step whose
   checker-side replay lands exactly on the installed constraint, so the
   whole log must check; rejected certificates leave the constraint
   untouched rather than installing an unproved reduction. *)
let presolve_certified () =
  for seed = 0 to 30 do
    let problem = Gen.problem seed in
    let buf = Buffer.create 1024 in
    let sink = Proof.Sink.of_buffer buf in
    let proof = Proof.create sink problem in
    let certify ~refs ~divisor ~expect =
      match Proof.log_derived proof ~refs ~divisor with
      | Some (k, c) when Pbo.Constr.equal c expect -> Some (-(k + 1))
      | Some _ | None -> None
    in
    let r = Bsolo.Preprocess.presolve ~certify problem in
    Proof.log_conclusion proof Proof.No_claim;
    Proof.Sink.close sink;
    let text = Buffer.contents buf in
    (match Proof.Check.check_string problem text with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "seed %d: presolve certificates rejected: %s" seed msg);
    (* every derived ref in the map points into the derived table *)
    Array.iter
      (fun p ->
        if p < -Proof.derived_count proof - 1 then
          Alcotest.failf "seed %d: dangling derived ref %d" seed p)
      r.cid_map
  done

let suite =
  [
    Alcotest.test_case "finds failed literal" `Quick finds_failed_literal;
    Alcotest.test_case "detects unsat" `Quick detects_unsat_by_probing;
    Alcotest.test_case "preserves optimum" `Slow preserves_optimum;
    Alcotest.test_case "leaves engine at level 0" `Quick idempotent_on_clean_instance;
    Alcotest.test_case "presolve preserves solution set" `Quick presolve_preserves_solution_set;
    Alcotest.test_case "presolve sequential tightening" `Quick presolve_sequential_tightening;
    Alcotest.test_case "presolve removes dominated" `Quick presolve_removes_dominated;
    Alcotest.test_case "presolve certified" `Quick presolve_certified;
  ]
