open Pbo

let small_routing = { Benchgen.Routing.default with width = 4; height = 4; nets = 5 }
let small_synth = { Benchgen.Synthesis.default with nodes = 5; support_cells = 4; exclusions = 4 }
let small_mcnc = { Benchgen.Two_level.default with minterms = 10; implicants = 8; groups = 1 }
let small_acc = { Benchgen.Acc.default with tasks = 6; slots = 3; conflicts = 5 }

let small_knap =
  { Benchgen.Knapsack.default with items = 8; rows = 5; dominant_rows = 2; duplicate_rows = 1 }

let deterministic () =
  let eq p1 p2 = Opb.to_string p1 = Opb.to_string p2 in
  Alcotest.(check bool) "routing" true
    (eq (Benchgen.Routing.generate ~params:small_routing 3) (Benchgen.Routing.generate ~params:small_routing 3));
  Alcotest.(check bool) "synthesis" true
    (eq (Benchgen.Synthesis.generate ~params:small_synth 3) (Benchgen.Synthesis.generate ~params:small_synth 3));
  Alcotest.(check bool) "two_level" true
    (eq (Benchgen.Two_level.generate ~params:small_mcnc 3) (Benchgen.Two_level.generate ~params:small_mcnc 3));
  Alcotest.(check bool) "acc" true
    (eq (Benchgen.Acc.generate ~params:small_acc 3) (Benchgen.Acc.generate ~params:small_acc 3));
  Alcotest.(check bool) "knapsack" true
    (eq (Benchgen.Knapsack.generate ~params:small_knap 3) (Benchgen.Knapsack.generate ~params:small_knap 3))

let seeds_differ () =
  let differ p1 p2 = Opb.to_string p1 <> Opb.to_string p2 in
  Alcotest.(check bool) "routing" true
    (differ (Benchgen.Routing.generate ~params:small_routing 1) (Benchgen.Routing.generate ~params:small_routing 2))

(* the planted construction makes routing and acc instances satisfiable *)
let planted_satisfiable () =
  for seed = 1 to 8 do
    let routing = Benchgen.Routing.generate ~params:small_routing seed in
    let o = Bsolo.Solver.solve ~options:{ Bsolo.Options.default with time_limit = Some 10. } routing in
    (match o.status with
    | Bsolo.Outcome.Optimal -> ()
    | s -> Alcotest.failf "routing seed %d: %s" seed (Bsolo.Outcome.status_name s));
    let acc = Benchgen.Acc.generate ~params:small_acc seed in
    let o = Bsolo.Solver.solve ~options:{ Bsolo.Options.default with time_limit = Some 10. } acc in
    (match o.status with
    | Bsolo.Outcome.Satisfiable -> ()
    | s -> Alcotest.failf "acc seed %d: %s" seed (Bsolo.Outcome.status_name s));
    (* knapsack rows always admit the all-ones point *)
    let knap = Benchgen.Knapsack.generate ~params:small_knap seed in
    let o = Bsolo.Solver.solve ~options:{ Bsolo.Options.default with time_limit = Some 10. } knap in
    match o.status with
    | Bsolo.Outcome.Optimal -> ()
    | s -> Alcotest.failf "knap seed %d: %s" seed (Bsolo.Outcome.status_name s)
  done

let families_have_expected_shape () =
  let routing = Benchgen.Routing.generate ~params:small_routing 1 in
  Alcotest.(check bool) "routing optimization" false (Problem.is_satisfaction routing);
  let acc = Benchgen.Acc.generate ~params:small_acc 1 in
  Alcotest.(check bool) "acc is satisfaction" true (Problem.is_satisfaction acc);
  let synth = Benchgen.Synthesis.generate ~params:small_synth 1 in
  (match Problem.objective synth with
  | None -> Alcotest.fail "synth has an objective"
  | Some o ->
    let big = Array.exists (fun (ct : Problem.cost_term) -> ct.cost >= 20) o.cost_terms in
    Alcotest.(check bool) "synthesis has large weights" true big);
  let mcnc = Benchgen.Two_level.generate ~params:small_mcnc 1 in
  match Problem.objective mcnc with
  | None -> Alcotest.fail "mcnc has an objective"
  | Some o ->
    let small = Array.for_all (fun (ct : Problem.cost_term) -> ct.cost <= 3) o.cost_terms in
    Alcotest.(check bool) "mcnc has small costs" true small

let suite_covers_families () =
  let instances = Benchgen.Suite.instances ~scale:0.3 ~per_family:2 () in
  Alcotest.(check int) "count" 10 (List.length instances);
  let count f =
    List.length (List.filter (fun (i : Benchgen.Suite.instance) -> i.family = f) instances)
  in
  List.iter
    (fun f -> Alcotest.(check int) (Benchgen.Suite.family_name f) 2 (count f))
    [
      Benchgen.Suite.Grout; Benchgen.Suite.Synth; Benchgen.Suite.Mcnc; Benchgen.Suite.Acc;
      Benchgen.Suite.Knap;
    ]

let scale_grows_instances () =
  let size scale =
    let p = Benchgen.Routing.generate ~params:{ small_routing with nets = int_of_float (10. *. scale) } 1 in
    Problem.nvars p
  in
  Alcotest.(check bool) "bigger scale, more vars" true (size 2.0 > size 0.5)

let cardinality_present_in_mcnc () =
  let p = Benchgen.Two_level.generate ~params:small_mcnc 2 in
  let has_card =
    Array.exists
      (fun c -> Constr.is_cardinality c && not (Constr.is_clause c))
      (Problem.constraints p)
  in
  Alcotest.(check bool) "group constraint present" true has_card

let suite =
  [
    Alcotest.test_case "deterministic" `Quick deterministic;
    Alcotest.test_case "seeds differ" `Quick seeds_differ;
    Alcotest.test_case "planted instances satisfiable" `Slow planted_satisfiable;
    Alcotest.test_case "family shapes" `Quick families_have_expected_shape;
    Alcotest.test_case "suite covers families" `Quick suite_covers_families;
    Alcotest.test_case "scale grows instances" `Quick scale_grows_instances;
    Alcotest.test_case "mcnc has cardinality constraints" `Quick cardinality_present_in_mcnc;
  ]
