let feps = 1e-5

let check_float msg expected got =
  if abs_float (expected -. got) > feps then
    Alcotest.failf "%s: expected %f, got %f" msg expected got

let expect_optimal = function
  | Simplex.Optimal s -> s
  | Simplex.Infeasible _ -> Alcotest.fail "unexpected infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected unbounded"
  | Simplex.Iteration_limit _ -> Alcotest.fail "unexpected iteration limit"

let lp ?(lower = fun _ -> 0.) ?(upper = fun _ -> 1.) ncols objective rows =
  {
    Simplex.ncols;
    lower = Array.init ncols lower;
    upper = Array.init ncols upper;
    objective = Array.of_list objective;
    rows =
      List.map
        (fun (coeffs, rel, rhs) -> { Simplex.coeffs = Array.of_list coeffs; rel; rhs })
        rows
      |> Array.of_list;
  }

let simple_cover () =
  (* min x + y  s.t.  x + y >= 1  ->  1 at any vertex of the face *)
  let sol = expect_optimal (Simplex.solve (lp 2 [ 1.; 1. ] [ [ 0, 1.; 1, 1. ], Simplex.Ge, 1. ])) in
  check_float "objective" 1. sol.value

let fractional_optimum () =
  (* min x + y  s.t.  2x + y >= 2, x + 2y >= 2  ->  x=y=2/3, z=4/3 *)
  let sol =
    expect_optimal
      (Simplex.solve
         (lp 2 [ 1.; 1. ]
            [
              [ 0, 2.; 1, 1. ], Simplex.Ge, 2.;
              [ 0, 1.; 1, 2. ], Simplex.Ge, 2.;
            ]))
  in
  check_float "objective" (4. /. 3.) sol.value;
  check_float "x" (2. /. 3.) sol.x.(0);
  check_float "y" (2. /. 3.) sol.x.(1)

let upper_bounds_bind () =
  (* min -x (i.e. max x) with x <= 1 bound: x = 1 *)
  let sol = expect_optimal (Simplex.solve (lp 1 [ -1. ] [])) in
  check_float "x at upper bound" 1. sol.x.(0);
  check_float "objective" (-1.) sol.value

let le_rows () =
  (* min -x - y s.t. x + y <= 1.5: optimum 1.5 split anywhere *)
  let sol =
    expect_optimal
      (Simplex.solve (lp 2 [ -1.; -1. ] [ [ 0, 1.; 1, 1. ], Simplex.Le, 1.5 ]))
  in
  check_float "objective" (-1.5) sol.value

let eq_rows () =
  (* min x s.t. x + y = 1, y <= 0.25  ->  x = 0.75 *)
  let sol =
    expect_optimal
      (Simplex.solve
         (lp 2
            ~upper:(fun j -> if j = 1 then 0.25 else 1.)
            [ 1.; 0. ]
            [ [ 0, 1.; 1, 1. ], Simplex.Eq, 1. ]))
  in
  check_float "x" 0.75 sol.x.(0)

let infeasible_detected () =
  (* x >= 1 and x <= 0.25 (as a row) *)
  match
    Simplex.solve
      (lp 1 [ 0. ]
         [ [ (0, 1.) ], Simplex.Ge, 1.; [ (0, 1.) ], Simplex.Le, 0.25 ])
  with
  | Simplex.Infeasible witness -> Alcotest.(check bool) "witness nonempty" true (witness <> [])
  | Simplex.Optimal _ | Simplex.Unbounded | Simplex.Iteration_limit _ ->
    Alcotest.fail "expected infeasible"

let row_activity_reported () =
  let sol = expect_optimal (Simplex.solve (lp 2 [ 1.; 2. ] [ [ 0, 1.; 1, 1. ], Simplex.Ge, 1. ])) in
  check_float "activity = 1 (tight)" 1. sol.row_activity.(0);
  check_float "cheapest var used" 1. sol.x.(0)

let degenerate_ok () =
  (* redundant rows on the same face *)
  let rows =
    [
      [ 0, 1.; 1, 1. ], Simplex.Ge, 1.;
      [ 0, 2.; 1, 2. ], Simplex.Ge, 2.;
      [ 0, 1. ], Simplex.Ge, 0.;
    ]
  in
  let sol = expect_optimal (Simplex.solve (lp 2 [ 1.; 1. ] rows)) in
  check_float "objective" 1. sol.value

let empty_problem () =
  let sol = expect_optimal (Simplex.solve (lp 2 [ 1.; 1. ] [])) in
  check_float "objective" 0. sol.value

(* qcheck: on random 0-1 covering LPs, the LP optimum never exceeds the
   integer optimum, and LP infeasibility implies IP infeasibility. *)
let qcheck_lp_bounds_ip =
  let gen =
    QCheck2.Gen.(
      let row = list_size (int_range 1 4) (pair (int_range 0 4) (int_range 1 4)) in
      pair (list_size (int_range 1 6) (pair row (int_range 1 6))) (list_size (int_range 5 5) (int_range 0 5)))
  in
  QCheck2.Test.make ~name:"LP relaxation bounds the 0-1 optimum" ~count:300 gen
    (fun (raw_rows, costs) ->
      let nvars = 5 in
      let rows =
        List.map
          (fun (terms, rhs) ->
            let coeffs = Array.of_list (List.map (fun (v, a) -> v, float_of_int a) terms) in
            { Simplex.coeffs; rel = Simplex.Ge; rhs = float_of_int rhs })
          raw_rows
      in
      let objective = Array.of_list (List.map float_of_int costs) in
      let problem =
        {
          Simplex.ncols = nvars;
          lower = Array.make nvars 0.;
          upper = Array.make nvars 1.;
          objective;
          rows = Array.of_list rows;
        }
      in
      (* integer optimum by enumeration *)
      let ip_best = ref None in
      for mask = 0 to (1 lsl nvars) - 1 do
        let x v = (mask lsr v) land 1 in
        let feasible =
          List.for_all
            (fun (terms, rhs) ->
              List.fold_left (fun acc (v, a) -> acc + (a * x v)) 0 terms >= rhs)
            raw_rows
        in
        if feasible then begin
          let cost = List.fold_left ( + ) 0 (List.mapi (fun v c -> c * x v) costs) in
          match !ip_best with
          | Some b when b <= cost -> ()
          | Some _ | None -> ip_best := Some cost
        end
      done;
      match Simplex.solve problem, !ip_best with
      | Simplex.Optimal sol, Some ip -> sol.value <= float_of_int ip +. feps
      | Simplex.Optimal _, None -> true  (* LP feasible, IP not: fine *)
      | Simplex.Infeasible _, None -> true
      | Simplex.Infeasible _, Some _ -> false  (* LP infeasible but IP feasible: bug *)
      | (Simplex.Unbounded | Simplex.Iteration_limit _), _ -> false)

(* qcheck: the reported primal solution is feasible and matches the
   reported objective value. *)
let qcheck_solution_consistent =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 6)
        (pair (list_size (int_range 1 4) (pair (int_range 0 4) (int_range 1 4))) (int_range 1 6)))
  in
  QCheck2.Test.make ~name:"simplex solution is primal feasible" ~count:300 gen (fun raw_rows ->
      let nvars = 5 in
      let rows =
        List.map
          (fun (terms, rhs) ->
            let coeffs = Array.of_list (List.map (fun (v, a) -> v, float_of_int a) terms) in
            { Simplex.coeffs; rel = Simplex.Ge; rhs = float_of_int rhs })
          raw_rows
      in
      let objective = Array.init nvars (fun v -> float_of_int (v + 1)) in
      let problem =
        {
          Simplex.ncols = nvars;
          lower = Array.make nvars 0.;
          upper = Array.make nvars 1.;
          objective;
          rows = Array.of_list rows;
        }
      in
      let feasible_at_ones =
        List.for_all
          (fun (terms, rhs) -> List.fold_left (fun acc (_, a) -> acc + a) 0 terms >= rhs)
          raw_rows
      in
      match Simplex.solve problem with
      | Simplex.Optimal sol ->
        let bounds_ok = Array.for_all (fun v -> v >= -.feps && v <= 1. +. feps) sol.x in
        let rows_ok =
          List.for_all2
            (fun { Simplex.coeffs; rhs; _ } activity ->
              let recomputed =
                Array.fold_left (fun acc (v, a) -> acc +. (a *. sol.x.(v))) 0. coeffs
              in
              abs_float (recomputed -. activity) < feps && activity >= rhs -. feps)
            rows
            (Array.to_list sol.row_activity)
        in
        let value_ok =
          let z = ref 0. in
          Array.iteri (fun v c -> z := !z +. (c *. sol.x.(v))) objective;
          abs_float (!z -. sol.value) < feps
        in
        bounds_ok && rows_ok && value_ok
      | Simplex.Infeasible _ ->
        (* positive Ge rows are feasible iff satisfiable at x = 1 *)
        not feasible_at_ones
      | Simplex.Unbounded | Simplex.Iteration_limit _ -> false)

(* --- incremental warm re-solving ------------------------------------------ *)

let incremental_basics () =
  (* min x + y s.t. x + y >= 1 *)
  let p = lp 2 [ 1.; 1. ] [ [ 0, 1.; 1, 1. ], Simplex.Ge, 1. ] in
  let sx = Simplex.Incremental.create p in
  (match Simplex.Incremental.reoptimize sx with
  | Simplex.Optimal s -> check_float "cold optimum" 1. s.value
  | _ -> Alcotest.fail "expected optimal");
  Alcotest.(check bool) "first call is cold" false (Simplex.Incremental.last_info sx).warm;
  Simplex.Incremental.fix sx 0 0.;
  (match Simplex.Incremental.reoptimize sx with
  | Simplex.Optimal s -> check_float "after fix x0=0" 1. s.value
  | _ -> Alcotest.fail "expected optimal");
  Alcotest.(check bool) "second call is warm" true (Simplex.Incremental.last_info sx).warm;
  Simplex.Incremental.fix sx 1 0.;
  (match Simplex.Incremental.reoptimize sx with
  | Simplex.Infeasible w -> Alcotest.(check bool) "witness nonempty" true (w <> [])
  | _ -> Alcotest.fail "expected infeasible");
  Alcotest.(check bool) "infeasible detected warm" true (Simplex.Incremental.last_info sx).warm;
  Simplex.Incremental.unfix sx 0;
  (match Simplex.Incremental.reoptimize sx with
  | Simplex.Optimal s -> check_float "recovered after unfix" 1. s.value
  | _ -> Alcotest.fail "expected optimal");
  Alcotest.(check bool) "still warm after infeasible" true (Simplex.Incremental.last_info sx).warm

(* qcheck: random 0/1 LPs with random fix/unfix scripts must give the same
   outcome from the incremental solver and from cold solves under the same
   bounds, including agreeing on infeasibility (with a nonempty witness). *)
let qcheck_warm_equals_cold =
  let gen =
    QCheck2.Gen.(
      let row = list_size (int_range 1 4) (pair (int_range 0 4) (int_range 1 4)) in
      triple
        (list_size (int_range 1 6) (pair row (int_range 1 6)))
        (list_size (int_range 5 5) (int_range 0 5))
        (list_size (int_range 1 12) (pair (int_range 0 4) (int_range 0 2))))
  in
  QCheck2.Test.make ~name:"incremental warm re-solves match cold solves" ~count:200 gen
    (fun (raw_rows, costs, script) ->
      let nvars = 5 in
      let rows =
        List.map
          (fun (terms, rhs) ->
            let coeffs = Array.of_list (List.map (fun (v, a) -> v, float_of_int a) terms) in
            { Simplex.coeffs; rel = Simplex.Ge; rhs = float_of_int rhs })
          raw_rows
      in
      let problem =
        {
          Simplex.ncols = nvars;
          lower = Array.make nvars 0.;
          upper = Array.make nvars 1.;
          objective = Array.of_list (List.map float_of_int costs);
          rows = Array.of_list rows;
        }
      in
      let sx = Simplex.Incremental.create problem in
      let lower = Array.make nvars 0. in
      let upper = Array.make nvars 1. in
      let agree () =
        let cold =
          Simplex.solve { problem with lower = Array.copy lower; upper = Array.copy upper }
        in
        match Simplex.Incremental.reoptimize sx, cold with
        | Simplex.Optimal a, Simplex.Optimal b -> abs_float (a.value -. b.value) <= feps
        | Simplex.Infeasible w, Simplex.Infeasible _ -> w <> []
        | _, _ -> false
      in
      let ok = ref (agree ()) in
      List.iter
        (fun (v, action) ->
          if !ok then begin
            (match action with
            | 0 ->
              Simplex.Incremental.fix sx v 0.;
              lower.(v) <- 0.;
              upper.(v) <- 0.
            | 1 ->
              Simplex.Incremental.fix sx v 1.;
              lower.(v) <- 1.;
              upper.(v) <- 1.
            | _ ->
              Simplex.Incremental.unfix sx v;
              lower.(v) <- 0.;
              upper.(v) <- 1.);
            ok := agree ()
          end)
        script;
      !ok)

(* --- live cut rows (add_row / drop_row) ------------------------------------ *)

let add_row_warm_repair () =
  (* min x + y s.t. x + y >= 1: optimum 1 fractional-friendly; then cut
     2x + 2y >= 3 pushes it to 1.5, and dropping the cut restores 1. *)
  let p = lp 2 [ 1.; 1. ] [ [ 0, 1.; 1, 1. ], Simplex.Ge, 1. ] in
  let sx = Simplex.Incremental.create p in
  (match Simplex.Incremental.reoptimize sx with
  | Simplex.Optimal s -> check_float "base optimum" 1. s.value
  | _ -> Alcotest.fail "expected optimal");
  let r =
    Simplex.Incremental.add_row sx
      { Simplex.coeffs = [| 0, 2.; 1, 2. |]; rel = Simplex.Ge; rhs = 3. }
  in
  Alcotest.(check int) "cut row index" 1 r;
  Alcotest.(check int) "row count grew" 2 (Simplex.Incremental.nrows sx);
  (match Simplex.Incremental.reoptimize sx with
  | Simplex.Optimal s ->
    check_float "cut binds" 1.5 s.value;
    Alcotest.(check bool) "cut repair is warm" true (Simplex.Incremental.last_info sx).warm;
    check_float "cut row activity" 3. s.row_activity.(r)
  | _ -> Alcotest.fail "expected optimal with cut");
  Simplex.Incremental.drop_row sx r;
  Alcotest.(check int) "row count shrank" 1 (Simplex.Incremental.nrows sx);
  match Simplex.Incremental.reoptimize sx with
  | Simplex.Optimal s -> check_float "optimum restored" 1. s.value
  | _ -> Alcotest.fail "expected optimal after drop"

(* qcheck: adding random Ge cut rows then dropping them returns exactly to
   the base optimum, and every intermediate warm solve matches a cold
   solve of the same (edited) problem. *)
let qcheck_cut_rows_warm_equals_cold =
  let gen =
    QCheck2.Gen.(
      let row = pair (list_size (int_range 1 4) (pair (int_range 0 4) (int_range 1 4))) (int_range 1 6) in
      pair (list_size (int_range 1 4) row) (list_size (int_range 1 4) row))
  in
  QCheck2.Test.make ~name:"cut rows: warm add/drop matches cold solves" ~count:200 gen
    (fun (base_rows, cut_rows) ->
      let nvars = 5 in
      let mk (terms, rhs) =
        {
          Simplex.coeffs = Array.of_list (List.map (fun (v, a) -> v, float_of_int a) terms);
          rel = Simplex.Ge;
          rhs = float_of_int rhs;
        }
      in
      let problem =
        {
          Simplex.ncols = nvars;
          lower = Array.make nvars 0.;
          upper = Array.make nvars 1.;
          objective = Array.init nvars (fun v -> float_of_int (v + 1));
          rows = Array.of_list (List.map mk base_rows);
        }
      in
      let sx = Simplex.Incremental.create problem in
      let live = ref (List.map mk base_rows) in
      let agree () =
        let cold = Simplex.solve { problem with rows = Array.of_list !live } in
        match Simplex.Incremental.reoptimize sx, cold with
        | Simplex.Optimal a, Simplex.Optimal b -> abs_float (a.value -. b.value) <= feps
        | Simplex.Infeasible w, Simplex.Infeasible _ -> w <> []
        | _, _ -> false
      in
      let ok = ref (agree ()) in
      let added =
        List.map
          (fun raw ->
            let r = mk raw in
            let idx = Simplex.Incremental.add_row sx r in
            live := !live @ [ r ];
            if !ok then ok := agree ();
            idx)
          cut_rows
      in
      (* drop in reverse so stored indices stay valid *)
      List.iter
        (fun idx ->
          Simplex.Incremental.drop_row sx idx;
          live := List.filteri (fun i _ -> i <> idx) !live;
          if !ok then ok := agree ())
        (List.rev added);
      !ok && Simplex.Incremental.nrows sx = List.length base_rows)

let suite =
  [
    Alcotest.test_case "simple cover" `Quick simple_cover;
    Alcotest.test_case "fractional optimum" `Quick fractional_optimum;
    Alcotest.test_case "upper bounds bind" `Quick upper_bounds_bind;
    Alcotest.test_case "Le rows" `Quick le_rows;
    Alcotest.test_case "Eq rows" `Quick eq_rows;
    Alcotest.test_case "infeasible detected" `Quick infeasible_detected;
    Alcotest.test_case "row activity" `Quick row_activity_reported;
    Alcotest.test_case "degenerate rows" `Quick degenerate_ok;
    Alcotest.test_case "empty problem" `Quick empty_problem;
    Alcotest.test_case "incremental basics" `Quick incremental_basics;
    Alcotest.test_case "cut row add/drop" `Quick add_row_warm_repair;
    QCheck_alcotest.to_alcotest qcheck_lp_bounds_ip;
    QCheck_alcotest.to_alcotest qcheck_solution_consistent;
    QCheck_alcotest.to_alcotest qcheck_warm_equals_cold;
    QCheck_alcotest.to_alcotest qcheck_cut_rows_warm_equals_cold;
  ]
