(* Cut separation soundness: every separated cut must be violated by
   the fractional point it was separated against, yet satisfied by every
   integral assignment the source constraint (cover/clique) or problem
   (implied bounds) admits — i.e. cuts slice off fractional vertices
   only.  Cross-checked by exhaustive model counting: appending a cut to
   its problem never changes the model count.  In proof mode every cut
   entering the pool carries a derivation the checker replays. *)

open Pbo
module Core = Engine.Solver_core

(* Deterministic pseudo-fractional point: var v of seed s gets a value
   in (0,1) that is rarely integral, the interesting regime for
   separation. *)
let xval_of_seed seed v =
  let h = (v + 1) * 2654435761 + (seed * 40503) in
  let u = float_of_int (abs h mod 1000) /. 1000. in
  0.05 +. (0.9 *. u)

(* All 2^n assignments satisfying [pred]. *)
let assignments nvars =
  List.init (1 lsl nvars) (fun mask -> fun (l : Lit.t) ->
      let v = Lit.var l in
      let bit = (mask lsr v) land 1 = 1 in
      if Lit.is_pos l then bit else not bit)

let satisfies c asg = Constr.satisfied_by asg c

(* A cut separated from one constraint is valid iff every assignment
   satisfying the source satisfies the cut. *)
let cut_valid_for ~nvars source cut =
  List.for_all
    (fun asg -> (not (satisfies source asg)) || satisfies cut asg)
    (assignments nvars)

let check_family name separate seed =
  let problem = Gen.problem seed in
  let nvars = Problem.nvars problem in
  let xval = xval_of_seed seed in
  Array.iteri
    (fun cid c ->
      match separate xval (cid, c) with
      | None -> ()
      | Some (cut, _recipe) ->
        if Cuts.violation xval cut <= 0. then
          Alcotest.failf "seed %d cid %d: %s cut %s not violated at the point" seed cid name
            (Constr.to_string cut);
        if not (cut_valid_for ~nvars c cut) then
          Alcotest.failf "seed %d cid %d: %s cut %s cuts off an integral solution of %s" seed
            cid name (Constr.to_string cut) (Constr.to_string c))
    (Problem.constraints problem)

let cover_cuts_valid () = for seed = 0 to 60 do check_family "cover" Cuts.cover_cut seed done
let clique_cuts_valid () = for seed = 0 to 60 do check_family "clique" Cuts.clique_cut seed done

(* Implied-bound cuts are problem-level: the mined clause must hold in
   every model of the whole problem. *)
let implied_cuts_valid () =
  for seed = 0 to 30 do
    let problem = Gen.problem seed in
    let nvars = Problem.nvars problem in
    let engine = Core.create problem in
    let models =
      List.filter
        (fun asg -> Array.for_all (fun c -> satisfies c asg) (Problem.constraints problem))
        (assignments nvars)
    in
    List.iter
      (fun (l, m) ->
        List.iter
          (fun asg ->
            if asg l && not (asg m) then
              Alcotest.failf "seed %d: mined implication %s -> %s fails in a model" seed
                (Lit.to_string l) (Lit.to_string m))
          models;
        Alcotest.(check int) "engine back at level 0" 0 (Core.decision_level engine))
      (Cuts.mine_implications engine)
  done

(* Pool separation: fresh entries are violated, mutually distinct, and
   appending any of them to the problem preserves the exact model count
   (exhaustive, small nvars). *)
let pool_separation_sound () =
  for seed = 0 to 40 do
    let problem = Gen.problem seed in
    (* a trivially-unsat instance loses its Trivial_false marker when
       rebuilt from its constraints array, skewing the count comparison *)
    if not (Problem.trivially_unsat problem) then begin
    let engine = Core.create problem in
    let tel = Telemetry.Ctx.create () in
    let pool = Cuts.Pool.create tel in
    Cuts.Pool.note_implications pool (Cuts.mine_implications engine);
    let xval = xval_of_seed seed in
    let entries = Cuts.Pool.separate pool engine ~xval in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (e : Cuts.Pool.entry) ->
        let c = e.cut.Cuts.constr in
        let key = Constr.to_string c in
        if Hashtbl.mem seen key then Alcotest.failf "seed %d: duplicate cut %s" seed key;
        Hashtbl.add seen key ();
        if Cuts.violation xval c <= 0. then
          Alcotest.failf "seed %d: pooled cut %s not violated" seed key;
        let with_cut =
          let b = Problem.Builder.create ~nvars:(Problem.nvars problem) () in
          Array.iter (fun c0 -> Problem.Builder.add_norm b (Constr.Constr c0))
            (Problem.constraints problem);
          Problem.Builder.add_norm b (Constr.Constr c);
          Problem.Builder.build b
        in
        let before = Bsolo.Exhaustive.count_models problem in
        let after = Bsolo.Exhaustive.count_models with_cut in
        if before <> after then
          Alcotest.failf "seed %d: cut %s changed the model count (%d -> %d)" seed key before
            after)
      entries
    end
  done

(* Proof mode: every pooled cut must carry a derivation, and the whole
   log (cuts included) must replay through the exact checker. *)
let pooled_cuts_certified () =
  for seed = 0 to 20 do
    let problem = Gen.problem seed in
    let buf = Buffer.create 1024 in
    let sink = Proof.Sink.of_buffer buf in
    let proof = Proof.create sink problem in
    let engine = Core.create problem in
    let tel = Telemetry.Ctx.create () in
    let pool = Cuts.Pool.create ~proof tel in
    Cuts.Pool.note_implications pool (Cuts.mine_implications engine);
    let entries = Cuts.Pool.separate pool engine ~xval:(xval_of_seed seed) in
    List.iter
      (fun (e : Cuts.Pool.entry) ->
        match e.cut.Cuts.proof_ref with
        | Some r when r < 0 -> ()
        | Some r -> Alcotest.failf "seed %d: cut with non-derived proof ref %d" seed r
        | None -> Alcotest.failf "seed %d: uncertified cut entered the pool in proof mode" seed)
      entries;
    Proof.log_conclusion proof Proof.No_claim;
    Proof.Sink.close sink;
    match Proof.Check.check_string problem (Buffer.contents buf) with
    | Ok _ -> ()
    | Error msg -> Alcotest.failf "seed %d: cut derivations rejected: %s" seed msg
  done

(* End-to-end: --cuts=tree and --cuts=off must land on identical
   optima (cuts shape the bound, never the answer). *)
let cuts_preserve_optimum () =
  for seed = 0 to 40 do
    let problem = Gen.problem seed in
    let solve cuts =
      Bsolo.Outcome.best_cost
        (Bsolo.Solver.solve ~options:{ Bsolo.Options.default with cuts } problem)
    in
    let reference = Bsolo.Exhaustive.optimum problem in
    match reference, solve Bsolo.Options.Cuts_off, solve Bsolo.Options.Cuts_tree with
    | None, None, None -> ()
    | Some (_, opt), Some a, Some b ->
      if a <> opt || b <> opt then
        Alcotest.failf "seed %d: optimum drifted (brute %d, off %s, tree %s)" seed opt
          (string_of_int a) (string_of_int b)
    | _ -> Alcotest.failf "seed %d: status mismatch across cut modes" seed
  done

let suite =
  [
    Alcotest.test_case "cover cuts valid" `Quick cover_cuts_valid;
    Alcotest.test_case "clique cuts valid" `Quick clique_cuts_valid;
    Alcotest.test_case "implied cuts valid" `Quick implied_cuts_valid;
    Alcotest.test_case "pool separation sound" `Slow pool_separation_sound;
    Alcotest.test_case "pooled cuts certified" `Quick pooled_cuts_certified;
    Alcotest.test_case "cut modes agree on optimum" `Slow cuts_preserve_optimum;
  ]
