open Pbo
module Core = Engine.Solver_core

(* Drive an engine to a random interior node (propagated, conflict-free).
   Returns None when the walk hits a conflict or exhausts variables. *)
let random_node problem seed depth =
  let engine = Core.create problem in
  if Core.root_unsat engine then None
  else begin
    let rng = Random.State.make [| seed; 0xbead |] in
    let rec walk d =
      match Core.propagate engine with
      | Some _ -> None
      | None ->
        if d = 0 || Core.all_assigned engine then Some engine
        else begin
          match Core.next_branch_var engine with
          | None -> Some engine
          | Some v ->
            Core.decide engine (Lit.make v (Random.State.bool rng));
            walk (d - 1)
        end
    in
    walk depth
  end

(* Minimum total cost over completions of the current assignment that
   satisfy every problem constraint; None if no completion does. *)
let residual_optimum problem engine =
  let nvars = Problem.nvars problem in
  let free = ref [] in
  for v = nvars - 1 downto 0 do
    if Value.equal (Core.value_var engine v) Value.Unknown then free := v :: !free
  done;
  let free = Array.of_list !free in
  let k = Array.length free in
  let base = Array.init nvars (fun v -> Value.equal (Core.value_var engine v) Value.True) in
  let best = ref None in
  for mask = 0 to (1 lsl k) - 1 do
    let a = Array.copy base in
    Array.iteri (fun i v -> a.(v) <- (mask lsr i) land 1 = 1) free;
    let m = Model.of_array a in
    if Model.satisfies problem m then begin
      let c = Model.cost problem m in
      match !best with
      | Some b when b <= c -> ()
      | Some _ | None -> best := Some c
    end
  done;
  !best

let offset problem = match Problem.objective problem with None -> 0 | Some o -> o.offset

let methods =
  [
    "mis", (fun engine ~cap -> ignore cap; Lowerbound.Mis.compute engine);
    "lgr", (fun engine ~cap -> Lowerbound.Lgr.compute engine ~cap);
    "lpr", (fun engine ~cap -> Lowerbound.Lpr.compute engine ~cap);
    (* a fresh incremental context per call: exercises the full-LP
       formulation behind the warm path under every generic property *)
    "lpr-inc", (fun engine ~cap -> Lowerbound.Lpr.compute_inc (Lowerbound.Lpr.make engine) ~cap);
  ]

(* Soundness: path + bound <= cost of the best completion. *)
let bound_soundness () =
  for seed = 0 to 120 do
    let problem = Gen.problem seed in
    if Problem.nvars problem <= 14 then begin
      match random_node problem seed (2 + (seed mod 5)) with
      | None -> ()
      | Some engine ->
        let cap = Problem.max_cost_sum problem + 1 in
        let opt = residual_optimum problem engine in
        List.iter
          (fun (name, compute) ->
            let b = compute engine ~cap in
            match opt with
            | None -> ()  (* no completion: any bound is fine *)
            | Some total ->
              let claimed = Core.path_cost engine + b.Lowerbound.Bound.value + offset problem in
              if claimed > total then
                Alcotest.failf "seed %d: %s claims %d > optimum %d" seed name claimed total)
          methods
    end
  done

(* Explanation entailment: any full model whose cost beats path + bound
   must satisfy the clause omega_pp ∪ omega_pl. *)
let explanation_entailment () =
  for seed = 0 to 120 do
    let problem = Gen.covering ~nvars:10 ~nclauses:12 seed in
    match random_node problem seed (2 + (seed mod 4)) with
    | None -> ()
    | Some engine ->
      let cap = Problem.max_cost_sum problem + 1 in
      List.iter
        (fun (name, compute) ->
          let b = compute engine ~cap in
          if b.Lowerbound.Bound.value > 0 then begin
            let omega_pp = List.map Lit.negate (Core.true_cost_lits engine) in
            let omega = omega_pp @ Lazy.force b.omega_pl in
            let threshold = Core.path_cost engine + b.value + offset problem in
            let nvars = Problem.nvars problem in
            for mask = 0 to (1 lsl nvars) - 1 do
              let m = Model.of_array (Array.init nvars (fun v -> (mask lsr v) land 1 = 1)) in
              if Model.satisfies problem m && Model.cost problem m < threshold then begin
                let clause_sat = List.exists (fun l -> Model.lit_true m l) omega in
                if not clause_sat then
                  Alcotest.failf "seed %d: %s explanation not entailed (cost %d < %d)" seed
                    name (Model.cost problem m) threshold
              end
            done
          end)
        methods
  done

(* LPR-specific: the branch hint names an unassigned variable. *)
let lpr_branch_hint_valid () =
  for seed = 0 to 60 do
    let problem = Gen.covering seed in
    match random_node problem seed 2 with
    | None -> ()
    | Some engine ->
      let b = Lowerbound.Lpr.compute engine ~cap:1000 in
      (match b.branch_hint with
      | None -> ()
      | Some v ->
        if not (Value.equal (Core.value_var engine v) Value.Unknown) then
          Alcotest.failf "seed %d: hint on assigned variable" seed)
  done

(* The LPR bound dominates MIS on covering problems most of the time; at
   minimum it must never be beaten by more than rounding on single
   constraints it could have selected itself.  We assert the weaker,
   always-true property: both are sound and LPR >= each individual
   constraint's contribution is implied by LP optimality.  Here we just
   record the empirical dominance to catch regressions. *)
let lpr_at_least_mis_often () =
  let wins = ref 0 and total = ref 0 in
  for seed = 0 to 60 do
    let problem = Gen.covering ~nvars:12 ~nclauses:16 seed in
    match random_node problem seed 2 with
    | None -> ()
    | Some engine ->
      let cap = Problem.max_cost_sum problem + 1 in
      let lpr = (Lowerbound.Lpr.compute engine ~cap).value in
      let mis = (Lowerbound.Mis.compute engine).value in
      incr total;
      if lpr >= mis then incr wins
  done;
  if !total > 10 && !wins * 10 < !total * 8 then
    Alcotest.failf "LPR >= MIS only on %d/%d nodes" !wins !total

(* Residual extraction invariants. *)
let residual_extraction () =
  for seed = 0 to 40 do
    let problem = Gen.problem seed in
    match random_node problem seed 3 with
    | None -> ()
    | Some engine ->
      let res = Lowerbound.Residual.extract engine in
      Array.iter
        (fun (row : Lowerbound.Residual.row) ->
          Array.iter
            (fun (col, coeff) ->
              if col < 0 || col >= res.ncols then Alcotest.fail "column out of range";
              if coeff = 0. then Alcotest.fail "zero coefficient";
              let v = res.cols.(col) in
              if not (Value.equal (Core.value_var engine v) Value.Unknown) then
                Alcotest.fail "assigned variable in residual")
            row.coeffs)
        res.rows
  done

let satisfied_node_bound_zero () =
  (* at a node where all constraints are satisfied the bounds are 0 *)
  let b = Problem.Builder.create ~nvars:3 () in
  Problem.Builder.add_clause b [ Lit.pos 0 ];
  Problem.Builder.set_objective b [ 1, Lit.pos 1; 1, Lit.pos 2 ];
  let problem = Problem.Builder.build b in
  let engine = Core.create problem in
  ignore (Core.propagate engine);
  (* x0 forced true; all constraints satisfied, x1 x2 free *)
  List.iter
    (fun (name, compute) ->
      let v = (compute engine ~cap:100).Lowerbound.Bound.value in
      if v <> 0 then Alcotest.failf "%s: expected 0 got %d" name v)
    methods

let suite =
  [
    Alcotest.test_case "bound soundness" `Slow bound_soundness;
    Alcotest.test_case "explanation entailment" `Slow explanation_entailment;
    Alcotest.test_case "lpr branch hint valid" `Quick lpr_branch_hint_valid;
    Alcotest.test_case "lpr >= mis mostly" `Quick lpr_at_least_mis_often;
    Alcotest.test_case "residual extraction" `Quick residual_extraction;
    Alcotest.test_case "satisfied node bound zero" `Quick satisfied_node_bound_zero;
  ]

(* LP-infeasible residual with a silent BCP fixpoint: LPR must prune with
   the cap and give a usable explanation. *)
let lpr_infeasible_relaxation () =
  let b = Problem.Builder.create ~nvars:3 () in
  (* sum >= 2 and sum <= 1 over the same variables, invisible to BCP *)
  Problem.Builder.add_ge b [ 2, Lit.pos 0; 2, Lit.pos 1; 2, Lit.pos 2 ] 4;
  Problem.Builder.add_ge b [ 2, Lit.neg 0; 2, Lit.neg 1; 2, Lit.neg 2 ] 4;
  Problem.Builder.set_objective b [ 1, Lit.pos 0 ];
  let problem = Problem.Builder.build b in
  let engine = Core.create problem in
  (match Core.propagate engine with
  | Some _ -> Alcotest.fail "BCP should be silent here"
  | None -> ());
  let bound = Lowerbound.Lpr.compute engine ~cap:42 in
  Alcotest.(check int) "cap returned" 42 bound.Lowerbound.Bound.value;
  Alcotest.(check bool) "explanation computable" true
    (match Lazy.force bound.omega_pl with _ -> true);
  (* and the instance really is unsatisfiable *)
  let o = Bsolo.Solver.solve problem in
  Alcotest.(check string) "unsat" "UNSATISFIABLE" (Bsolo.Outcome.status_name o.status)

let lgr_no_cost_instance () =
  (* all-zero objective: bounds must be 0 and never prune incorrectly *)
  let b = Problem.Builder.create ~nvars:4 () in
  Problem.Builder.add_clause b [ Lit.pos 0; Lit.pos 1 ];
  Problem.Builder.add_clause b [ Lit.pos 2; Lit.pos 3 ];
  Problem.Builder.set_objective b [];
  let problem = Problem.Builder.build b in
  let engine = Core.create problem in
  ignore (Core.propagate engine);
  List.iter
    (fun (name, compute) ->
      let v = (compute engine ~cap:10).Lowerbound.Bound.value in
      if v <> 0 then Alcotest.failf "%s: nonzero bound %d without costs" name v)
    methods

let suite =
  suite
  @ [
      Alcotest.test_case "lpr infeasible relaxation" `Quick lpr_infeasible_relaxation;
      Alcotest.test_case "lgr/mis/lpr with empty objective" `Quick lgr_no_cost_instance;
    ]

(* One persistent incremental context across a whole randomized search
   walk (decisions, conflicts, backjumps) must report the same bound as
   the from-scratch residual LP at every comparison point, and must
   actually warm-start at least once across the walks. *)
let lpr_incremental_matches_legacy () =
  let warm_total = ref 0 in
  for seed = 0 to 40 do
    let problem =
      if seed mod 2 = 0 then Gen.problem seed else Gen.covering ~nvars:10 ~nclauses:14 seed
    in
    let engine = Core.create problem in
    if not (Core.root_unsat engine) then begin
      let cap = Problem.max_cost_sum problem + 1 in
      let inc = Lowerbound.Lpr.make engine in
      let rng = Random.State.make [| seed; 0x11c |] in
      let compare_here where =
        let legacy = (Lowerbound.Lpr.compute engine ~cap).Lowerbound.Bound.value in
        let warm = (Lowerbound.Lpr.compute_inc inc ~cap).Lowerbound.Bound.value in
        if legacy <> warm then
          Alcotest.failf "seed %d (%s): legacy %d <> incremental %d" seed where legacy warm
      in
      compare_here "root";
      let rec walk fuel =
        if fuel > 0 then begin
          match Core.propagate engine with
          | Some ci ->
            (match Core.resolve_conflict engine ci with
            | Core.Root_conflict -> ()
            | Core.Backjump _ ->
              compare_here "after backjump";
              walk (fuel - 1))
          | None ->
            compare_here "at fixpoint";
            (match Core.next_branch_var engine with
            | None -> ()
            | Some v ->
              Core.decide engine (Lit.make v (Random.State.bool rng));
              walk (fuel - 1))
        end
      in
      walk 30;
      let reg = (Core.telemetry engine).Telemetry.Ctx.registry in
      warm_total :=
        !warm_total
        + Option.value ~default:0 (Telemetry.Registry.find_counter reg "lpr.warm_hits")
    end
  done;
  if !warm_total = 0 then Alcotest.fail "no warm-started re-solve across all walks"

(* Regression: a variable flipping value between two LB evaluations
   (True -> backjump -> False with no drain in between) reaches sync as a
   plain re-fix with unfixes = 0; the cached infeasibility certificate
   must NOT survive it, or a feasible node gets pruned with the cap. *)
let lpr_inc_flip_invalidates_infeasibility_cache () =
  let b = Problem.Builder.create ~nvars:3 () in
  Problem.Builder.add_clause b [ Lit.pos 1; Lit.pos 2 ];
  Problem.Builder.add_clause b [ Lit.neg 1; Lit.neg 2 ];
  Problem.Builder.add_clause b [ Lit.pos 0; Lit.neg 1 ];
  Problem.Builder.add_clause b [ Lit.pos 0; Lit.neg 2 ];
  Problem.Builder.set_objective b [ 1, Lit.pos 1 ];
  let problem = Problem.Builder.build b in
  let engine = Core.create problem in
  let inc = Lowerbound.Lpr.make engine in
  let cap = 42 in
  (* under ~x0 the relaxation is infeasible: x1 <= 0, x2 <= 0, x1 + x2 >= 1 *)
  Core.decide engine (Lit.neg 0);
  let binf = Lowerbound.Lpr.compute_inc inc ~cap in
  Alcotest.(check int) "infeasible under ~x0" cap binf.Lowerbound.Bound.value;
  (* flip: x0 goes False -> Unknown -> True with no LB call in between *)
  Core.backjump_to engine 0;
  Core.decide engine (Lit.pos 0);
  let bflip = Lowerbound.Lpr.compute_inc inc ~cap in
  let legacy = Lowerbound.Lpr.compute engine ~cap in
  Alcotest.(check int)
    "feasible after flip matches cold LPR"
    legacy.Lowerbound.Bound.value bflip.Lowerbound.Bound.value;
  Alcotest.(check bool) "stale cap not returned" true (bflip.Lowerbound.Bound.value < cap)

(* End-to-end: a full bsolo solve on the default (warm) configuration
   must warm-start the LP and land on the same optimum as a cold-LPR
   solve of the same instance. *)
let lpr_warm_end_to_end () =
  let solved = ref 0 and warm_hits = ref 0 in
  for seed = 0 to 8 do
    let problem = Gen.covering ~nvars:12 ~nclauses:16 seed in
    let tel = Telemetry.Ctx.create () in
    let warm_opts =
      { (Bsolo.Options.with_lb Bsolo.Options.Lpr) with telemetry = Some tel }
    in
    let cold_opts = { (Bsolo.Options.with_lb Bsolo.Options.Lpr) with lpr_warm = false } in
    let ow = Bsolo.Solver.solve ~options:warm_opts problem in
    let oc = Bsolo.Solver.solve ~options:cold_opts problem in
    Alcotest.(check string)
      (Printf.sprintf "seed %d status" seed)
      (Bsolo.Outcome.status_name oc.status)
      (Bsolo.Outcome.status_name ow.status);
    Alcotest.(check (option int))
      (Printf.sprintf "seed %d cost" seed)
      (Bsolo.Outcome.best_cost oc) (Bsolo.Outcome.best_cost ow);
    incr solved;
    warm_hits :=
      !warm_hits
      + Option.value ~default:0
          (Telemetry.Registry.find_counter tel.Telemetry.Ctx.registry "lpr.warm_hits")
  done;
  if !solved > 0 && !warm_hits = 0 then
    Alcotest.fail "warm path never warm-started during full solves"

let suite =
  suite
  @ [
      Alcotest.test_case "lpr incremental = legacy on walks" `Slow lpr_incremental_matches_legacy;
      Alcotest.test_case "lpr flip invalidates infeasibility cache" `Quick
        lpr_inc_flip_invalidates_infeasibility_cache;
      Alcotest.test_case "lpr warm end-to-end" `Quick lpr_warm_end_to_end;
    ]
