(* Search-analytics layer: series decimation, bound-quality tracking
   attribution, per-procedure effectiveness, report diffs and the bench
   regression schema. *)

module Json = Telemetry.Json

let check_float = Alcotest.check (Alcotest.float 1e-9)

(* --- Telemetry.Series ------------------------------------------------------ *)

let test_series_bounded () =
  let s = Telemetry.Series.make ~capacity:8 ~fields:[ "v" ] "t" in
  for i = 0 to 999 do
    Telemetry.Series.observe s ~t:(float_of_int i) [| float_of_int (i * 2) |]
  done;
  let n = Telemetry.Series.length s in
  Alcotest.(check bool) "bounded" true (n <= 8 && n >= 4);
  let samples = Telemetry.Series.samples s in
  Alcotest.(check int) "samples match length" n (List.length samples);
  (* Oldest first, strictly increasing times, values consistent. *)
  let rec monotone = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 < t2 && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (monotone samples);
  List.iter (fun (t, vs) -> check_float "value tracks time" (2. *. t) vs.(0)) samples

let test_series_observe_now () =
  let s = Telemetry.Series.make ~capacity:8 ~fields:[ "v" ] "t" in
  for i = 0 to 99 do
    Telemetry.Series.observe s ~t:(float_of_int i) [| 0. |]
  done;
  (* After decimation the stride drops most offers, but observe_now points
     must always land. *)
  Telemetry.Series.observe_now s ~t:1000. [| 42. |];
  let samples = Telemetry.Series.samples s in
  let t_last, v_last = List.nth samples (List.length samples - 1) in
  check_float "kept time" 1000. t_last;
  check_float "kept value" 42. v_last.(0)

let test_series_arity () =
  let s = Telemetry.Series.make ~fields:[ "lb"; "ub" ] "g" in
  Alcotest.check_raises "arity enforced" (Invalid_argument "Series.observe: arity mismatch")
    (fun () -> Telemetry.Series.observe s ~t:0. [| 1. |])

(* --- Lowerbound.Track ------------------------------------------------------ *)

let test_tightness_pm () =
  Alcotest.(check int) "half" 500 (Lowerbound.Track.tightness_pm ~value:5 ~need:10);
  Alcotest.(check int) "full" 1000 (Lowerbound.Track.tightness_pm ~value:10 ~need:10);
  Alcotest.(check int) "clamped high" 1000 (Lowerbound.Track.tightness_pm ~value:25 ~need:10);
  Alcotest.(check int) "clamped low" 0 (Lowerbound.Track.tightness_pm ~value:(-3) ~need:10);
  Alcotest.(check int) "closed gap" 1000 (Lowerbound.Track.tightness_pm ~value:0 ~need:0)

let test_track_attribution () =
  let tel = Telemetry.Ctx.create () in
  let reg = tel.Telemetry.Ctx.registry in
  let tr = Lowerbound.Track.create tel ~proc:"lpr" in
  Lowerbound.Track.note_call tr ~value:6 ~path:2 ~upper:10;
  Lowerbound.Track.note_call tr ~value:8 ~path:2 ~upper:10;
  (* Two LB-driven bound conflicts and one path-cost-only one. *)
  Lowerbound.Track.note_bound_conflict tr ~lb_driven:true ~from_level:10 ~to_level:4 ~lb:8
    ~path:2 ~upper:10;
  Lowerbound.Track.note_bound_conflict tr ~lb_driven:true ~from_level:7 ~to_level:5 ~lb:8
    ~path:2 ~upper:10;
  Lowerbound.Track.note_bound_conflict tr ~lb_driven:false ~from_level:3 ~to_level:2 ~lb:10
    ~path:10 ~upper:10;
  let counter name = Option.value ~default:0 (Telemetry.Registry.find_counter reg name) in
  Alcotest.(check int) "lpr conflicts" 2 (counter "lb.lpr.bound_conflicts");
  Alcotest.(check int) "path conflicts" 1 (counter "lb.path.bound_conflicts");
  let tightness = Telemetry.Registry.histogram reg "lb.lpr.tightness_pm" in
  Alcotest.(check int) "calls recorded" 2 (Telemetry.Histogram.total tightness);
  (* value=6 over need=8 is 750 pm; value=8 closes the gap. *)
  check_float "mean tightness" 875. (Telemetry.Histogram.mean tightness);
  let backjump = Telemetry.Registry.histogram reg "lb.lpr.bc_backjump" in
  Alcotest.(check int) "lpr backjumps" 2 (Telemetry.Histogram.total backjump);
  check_float "mean backjump" 4. (Telemetry.Histogram.mean backjump)

let test_gap_series_roundtrip () =
  let tel = Telemetry.Ctx.create () in
  let tr = Lowerbound.Track.create tel ~proc:"mis" in
  Lowerbound.Track.gap_sample tr ~at:0.5 ~lb:3 ~ub:20;
  Lowerbound.Track.gap_sample_now tr ~at:1.5 ~lb:7 ~ub:12;
  (* Rebuild the report's "series" section the way Report.make does and
     re-read it through the public reader. *)
  let series = Telemetry.Registry.all_series tel.Telemetry.Ctx.registry in
  Alcotest.(check int) "one series" 1 (List.length series);
  let s = List.hd series in
  Alcotest.(check string) "name" Lowerbound.Track.gap_series_name (Telemetry.Series.name s);
  let json =
    Json.Obj
      [
        ( "series",
          Json.Obj
            [
              ( Telemetry.Series.name s,
                Json.Obj
                  [
                    ( "samples",
                      Json.List
                        (List.map
                           (fun (t, vs) ->
                             Json.List
                               (Json.Float t
                               :: List.map (fun v -> Json.Float v) (Array.to_list vs)))
                           (Telemetry.Series.samples s)) );
                  ] );
            ] );
      ]
  in
  match Bsolo.Report.series_of_json json Lowerbound.Track.gap_series_name with
  | [ (t1, v1); (t2, v2) ] ->
    check_float "t1" 0.5 t1;
    check_float "lb1" 3. v1.(0);
    check_float "ub1" 20. v1.(1);
    check_float "t2" 1.5 t2;
    check_float "lb2" 7. v2.(0);
    check_float "ub2" 12. v2.(1)
  | other -> Alcotest.failf "expected 2 samples, got %d" (List.length other)

(* --- effectiveness --------------------------------------------------------- *)

let synthetic_report =
  Json.Obj
    [
      "schema", Json.String "bsolo-run-report/1";
      "elapsed", Json.Float 2.0;
      ( "phases",
        Json.Obj [ "lower_bound", Json.Float 0.3; "simplex", Json.Float 0.5 ] );
      ( "counters",
        Json.Obj
          [
            "lb.lpr.bound_conflicts", Json.Int 10;
            "lb.path.bound_conflicts", Json.Int 2;
            "engine.conflicts", Json.Int 40;
          ] );
      ( "histograms",
        Json.Obj
          [
            ( "lb.lpr.tightness_pm",
              Json.Obj [ "total", Json.Int 20; "mean", Json.Float 800.; "max", Json.Int 1000 ]
            );
            ( "lb.lpr.bc_backjump",
              Json.Obj [ "total", Json.Int 10; "mean", Json.Float 3.; "max", Json.Int 7 ] );
            ( "lb.path.bc_backjump",
              Json.Obj [ "total", Json.Int 2; "mean", Json.Float 1.; "max", Json.Int 1 ] );
          ] );
    ]

let test_effectiveness () =
  let rows = Inspect.effectiveness synthetic_report in
  Alcotest.(check int) "two procs" 2 (List.length rows);
  let lpr = List.find (fun (r : Inspect.proc_row) -> r.proc = "lpr") rows in
  let path = List.find (fun (r : Inspect.proc_row) -> r.proc = "path") rows in
  Alcotest.(check int) "lpr calls from tightness total" 20 lpr.calls;
  check_float "lpr seconds = lower_bound + simplex" 0.8 lpr.time_s;
  check_float "lpr time share" 0.4 lpr.time_share;
  check_float "lpr tightness" 800. lpr.mean_tightness_pm;
  Alcotest.(check int) "lpr conflicts" 10 lpr.bound_conflicts;
  check_float "lpr mean backjump" 3. lpr.mean_backjump;
  Alcotest.(check int) "lpr pruning credit" 30 lpr.pruning_credit;
  Alcotest.(check int) "path conflicts" 2 path.bound_conflicts;
  Alcotest.(check int) "path pruning credit" 2 path.pruning_credit

(* --- report diff ----------------------------------------------------------- *)

let report ~elapsed ~conflicts ~lb_time =
  Json.Obj
    [
      "schema", Json.String "bsolo-run-report/1";
      "elapsed", Json.Float elapsed;
      "phases", Json.Obj [ "lower_bound", Json.Float lb_time ];
      "counters", Json.Obj [ "engine.conflicts", Json.Int conflicts ];
    ]

let test_diff_flags_slowdown () =
  let base = report ~elapsed:1.0 ~conflicts:1000 ~lb_time:0.4 in
  let cand = report ~elapsed:2.0 ~conflicts:3000 ~lb_time:1.1 in
  let entries = Inspect.diff ~threshold:0.25 base cand in
  Alcotest.(check bool) "has regression" true (Inspect.has_regression entries);
  let by_key k = List.find (fun (e : Inspect.diff_entry) -> e.key = k) entries in
  Alcotest.(check bool) "elapsed 2x flagged" true (by_key "elapsed").regression;
  Alcotest.(check bool) "conflicts 3x flagged" true
    (by_key "counters.engine.conflicts").regression;
  Alcotest.(check bool) "phase flagged" true (by_key "phases.lower_bound").regression

let test_diff_below_threshold () =
  let base = report ~elapsed:1.0 ~conflicts:1000 ~lb_time:0.4 in
  let cand = report ~elapsed:1.1 ~conflicts:1040 ~lb_time:0.45 in
  let entries = Inspect.diff ~threshold:0.25 base cand in
  Alcotest.(check bool) "no regression" false (Inspect.has_regression entries)

let test_diff_noise_floor () =
  (* Huge ratios on tiny absolute values stay below the noise floors. *)
  let base = report ~elapsed:0.002 ~conflicts:3 ~lb_time:0.001 in
  let cand = report ~elapsed:0.01 ~conflicts:30 ~lb_time:0.004 in
  let entries = Inspect.diff ~threshold:0.25 base cand in
  Alcotest.(check bool) "noise not flagged" false (Inspect.has_regression entries)

(* --- bench regression schema ----------------------------------------------- *)

let bench_row name elapsed nodes : Inspect.Bench.row =
  {
    name;
    solver = "LPR";
    status = "OPTIMAL";
    cost = Some 9;
    elapsed;
    nodes;
    conflicts = nodes / 2;
    bound_conflicts = nodes / 3;
    lb_calls = nodes / 3;
    simplex_iters = nodes * 2;
    warm_hits = nodes / 4;
    imports = 0;
    proof_steps = nodes * 3;
    check_ms = float_of_int nodes;
    props_per_sec = (if elapsed > 0. then float_of_int nodes /. elapsed else 0.);
    cuts_separated = nodes / 5;
    cuts_active = nodes / 10;
    presolve_reductions = 2;
  }

let test_bench_golden () =
  let report =
    Inspect.Bench.make ~rev:"abc1234" ~limit:1.0 ~scale:0.25 ~per_family:2
      [ bench_row "grout-2-2:1" 0.5 120 ]
  in
  let expected =
    "{\"schema\":\"bsolo-bench-regress/1\",\"rev\":\"abc1234\",\"limit\":1.0,\
     \"scale\":0.25,\"per_family\":2,\"instances\":[{\"name\":\"grout-2-2:1\",\
     \"solver\":\"LPR\",\"status\":\"OPTIMAL\",\"cost\":9,\"elapsed\":0.5,\
     \"nodes\":120,\"conflicts\":60,\"bound_conflicts\":40,\"lb_calls\":40,\
     \"simplex_iters\":240,\"warm_hits\":30,\"imports\":0,\
     \"proof_steps\":360,\"check_ms\":120.0,\"props_per_sec\":240.0,\"cuts_separated\":24,\"cuts_active\":12,\"presolve_reductions\":2}]}"
  in
  Alcotest.(check string) "golden serialization" expected (Json.to_string report)

let test_bench_roundtrip () =
  let rows = [ bench_row "a:1" 0.25 200; { (bench_row "a:2" 1.5 64) with cost = None; status = "UNKNOWN" } ] in
  let json = Inspect.Bench.make ~rev:"dev" ~limit:1.0 ~scale:0.5 ~per_family:1 rows in
  let reparsed =
    match Json.of_string (Json.to_string json) with
    | Ok v -> v
    | Error msg -> Alcotest.failf "reparse: %s" msg
  in
  Alcotest.(check (option string)) "schema" (Some Inspect.Bench.schema)
    (Inspect.schema_of reparsed);
  let rows' = Inspect.Bench.rows_of_json reparsed in
  Alcotest.(check int) "row count" 2 (List.length rows');
  List.iter2
    (fun (a : Inspect.Bench.row) (b : Inspect.Bench.row) ->
      Alcotest.(check string) "name" a.name b.name;
      Alcotest.(check (option int)) "cost" a.cost b.cost;
      check_float "elapsed" a.elapsed b.elapsed;
      Alcotest.(check int) "nodes" a.nodes b.nodes;
      Alcotest.(check int) "lb_calls" a.lb_calls b.lb_calls)
    rows rows';
  (* A report diffed against itself is clean... *)
  let entries = Inspect.diff ~threshold:0.25 reparsed reparsed in
  Alcotest.(check bool) "self-diff clean" false (Inspect.has_regression entries);
  (* ...and a doctored slowdown/status-loss is caught instance-wise. *)
  let doctored =
    Inspect.Bench.make ~rev:"dev" ~limit:1.0 ~scale:0.5 ~per_family:1
      [
        { (bench_row "a:1" 0.9 500) with status = "UNKNOWN"; cost = None };
        List.nth rows 1;
      ]
  in
  let entries = Inspect.diff ~threshold:0.25 reparsed doctored in
  Alcotest.(check bool) "doctored flagged" true (Inspect.has_regression entries);
  let regressed =
    List.filter_map
      (fun (e : Inspect.diff_entry) -> if e.regression then Some e.key else None)
      entries
  in
  Alcotest.(check (list string)) "regressed keys"
    [
      "a:1.status";
      "a:1.cost";
      "a:1.elapsed";
      "a:1.nodes";
      "a:1.simplex_iters";
      "a:1.proof_steps";
      "a:1.check_ms";
      "a:1.props_per_sec";
    ]
    regressed

let test_bench_missing_instance () =
  let base =
    Inspect.Bench.make ~rev:"a" ~limit:1.0 ~scale:0.5 ~per_family:1
      [ bench_row "x:1" 0.1 10; bench_row "x:2" 0.1 10 ]
  in
  let cand =
    Inspect.Bench.make ~rev:"b" ~limit:1.0 ~scale:0.5 ~per_family:1 [ bench_row "x:1" 0.1 10 ]
  in
  let entries = Inspect.Bench.diff ~threshold:0.25 base cand in
  Alcotest.(check bool) "missing instance is a regression" true
    (List.exists
       (fun (e : Inspect.diff_entry) -> e.key = "x:2.missing" && e.regression)
       entries)

let suite =
  [
    Alcotest.test_case "series bounded decimation" `Quick test_series_bounded;
    Alcotest.test_case "series observe_now kept" `Quick test_series_observe_now;
    Alcotest.test_case "series arity check" `Quick test_series_arity;
    Alcotest.test_case "tightness per-mille" `Quick test_tightness_pm;
    Alcotest.test_case "track attribution" `Quick test_track_attribution;
    Alcotest.test_case "gap series round-trip" `Quick test_gap_series_roundtrip;
    Alcotest.test_case "effectiveness table" `Quick test_effectiveness;
    Alcotest.test_case "diff flags 2x slowdown" `Quick test_diff_flags_slowdown;
    Alcotest.test_case "diff below threshold" `Quick test_diff_below_threshold;
    Alcotest.test_case "diff noise floor" `Quick test_diff_noise_floor;
    Alcotest.test_case "bench golden file" `Quick test_bench_golden;
    Alcotest.test_case "bench schema round-trip" `Quick test_bench_roundtrip;
    Alcotest.test_case "bench missing instance" `Quick test_bench_missing_instance;
  ]
