(* Cross-mode BCP equivalence: watched, counting and hybrid propagation
   must explore the identical search tree — same fixpoints, same
   conflicts, same outcomes, byte-identical recorded event streams. *)
open Pbo
module Core = Engine.Solver_core
module R = Telemetry.Recorder

let modes = [ Core.Watched, "watched"; Core.Counting, "counting"; Core.Hybrid, "hybrid" ]

(* --- engine-level lockstep ------------------------------------------------- *)

(* Drive one engine per mode through the identical decision sequence and
   compare the full propagation fixpoint after every step: trail
   contents (order included), conflict verdicts, analysis results.  The
   hybrid engine picks the decisions; its VSIDS state stays in step with
   the others exactly because everything else does. *)
let trail_of engine =
  let lits = ref [] in
  (* no trail iterator in the API: recover the assignment from values +
     levels, which determines the trail up to within-level order *)
  for v = Core.nvars engine - 1 downto 0 do
    match Core.value_var engine v with
    | Value.True -> lits := (v, true, Core.level_of_var engine v) :: !lits
    | Value.False -> lits := (v, false, Core.level_of_var engine v) :: !lits
    | Value.Unknown -> ()
  done;
  !lits

let check_engine seed engine name =
  match Core.check_invariants engine with
  | Ok () -> ()
  | Error e -> Alcotest.failf "seed %d (%s): invariant: %s" seed name e

let lockstep_walk () =
  for seed = 0 to 60 do
    let problem = Gen.problem seed in
    let engines = List.map (fun (m, name) -> Core.create ~bcp:m problem, name) modes in
    let lead = fst (List.hd engines) in
    let rng = Random.State.make [| seed; 0xbc9 |] in
    let compare_states where =
      let ref_trail = trail_of lead in
      List.iter
        (fun (e, name) ->
          check_engine seed e name;
          if Core.root_unsat e <> Core.root_unsat lead then
            Alcotest.failf "seed %d %s (%s): root_unsat differs" seed where name;
          if trail_of e <> ref_trail then
            Alcotest.failf "seed %d %s (%s): assignment differs from watched engine" seed
              where name;
          if Core.decision_level e <> Core.decision_level lead then
            Alcotest.failf "seed %d %s (%s): decision level differs" seed where name)
        (List.tl engines)
    in
    let propagate_all where =
      let results = List.map (fun (e, name) -> Core.propagate e, name) engines in
      let lead_conflict, _ = List.hd results in
      List.iter
        (fun (c, name) ->
          match lead_conflict, c with
          | None, None -> ()
          | Some _, Some _ -> ()
          | _ ->
            Alcotest.failf "seed %d %s (%s): conflict verdict differs" seed where name)
        results;
      compare_states where;
      List.map fst results
    in
    let rec walk fuel =
      if fuel > 0 && not (Core.root_unsat lead) then begin
        match propagate_all "propagate" with
        | Some _ :: _ as conflicts ->
          let analyses =
            List.map2
              (fun conflict (e, name) ->
                (* each engine analyzes its own conflict cid; the learned
                   clause and backjump must agree *)
                match conflict with
                | Some ci -> Core.resolve_conflict e ci, name
                | None -> Alcotest.failf "seed %d (%s): conflict not reported" seed name)
              conflicts engines
          in
          let lead_a, _ = List.hd analyses in
          List.iter
            (fun (a, name) ->
              match lead_a, a with
              | Core.Root_conflict, Core.Root_conflict -> ()
              | ( Core.Backjump { level = l1; asserting = a1 },
                  Core.Backjump { level = l2; asserting = a2 } )
                when l1 = l2 && a1 = a2 ->
                ()
              | _ -> Alcotest.failf "seed %d (%s): analysis differs" seed name)
            (List.tl analyses);
          compare_states "after analysis";
          walk (fuel - 1)
        | _ ->
          (match Core.next_branch_var lead with
          | None -> ()
          | Some v ->
            let l = Lit.make v (Random.State.bool rng) in
            List.iter (fun (e, _) -> Core.decide e l) engines;
            walk (fuel - 1))
      end
    in
    walk 40
  done

(* Propagate never re-reports a conflict it already returned (the trail
   is fully dequeued), so the lockstep loop above re-propagates before
   resolving; double-check that behaviour is uniform too. *)

(* --- solver-level equivalence over all four LB methods --------------------- *)

let lb_methods =
  [
    Bsolo.Options.Plain, "plain";
    Bsolo.Options.Mis, "mis";
    Bsolo.Options.Lgr, "lgr";
    Bsolo.Options.Lpr, "lpr";
  ]

let outcome_signature problem options =
  let tel = Telemetry.Ctx.silent () in
  let outcome =
    Bsolo.Solver.solve ~options:{ options with Bsolo.Options.telemetry = Some tel } problem
  in
  let counters = Telemetry.Registry.counters tel.registry in
  let pick name = try List.assoc name counters with Not_found -> 0 in
  ( Bsolo.Outcome.status_name outcome.Bsolo.Outcome.status,
    Option.map snd outcome.best,
    pick "engine.decisions",
    pick "engine.conflicts",
    pick "engine.propagations" )

let qcheck_solver_equivalence =
  let gen = QCheck2.Gen.(pair (int_bound 10_000) (oneofl (List.map fst lb_methods))) in
  QCheck2.Test.make ~name:"all --bcp modes explore the identical tree" ~count:60 gen
    (fun (seed, lb) ->
      let problem = Gen.problem seed in
      let base = Bsolo.Options.with_lb lb in
      let reference = outcome_signature problem { base with bcp = Core.Watched } in
      List.for_all
        (fun (m, _) -> outcome_signature problem { base with bcp = m } = reference)
        (List.tl modes))

let solver_equivalence_covering () =
  List.iter
    (fun (lb, lb_name) ->
      for seed = 0 to 15 do
        let problem = Gen.covering seed in
        let base = Bsolo.Options.with_lb lb in
        let signatures =
          List.map (fun (m, name) -> outcome_signature problem { base with bcp = m }, name) modes
        in
        let ref_sig, _ = List.hd signatures in
        List.iter
          (fun (s, name) ->
            if s <> ref_sig then
              Alcotest.failf "covering seed %d lb=%s: %s disagrees with watched" seed lb_name
                name)
          (List.tl signatures)
      done)
    lb_methods

(* --- recorded event stream across modes ------------------------------------ *)

let tmp suffix = Filename.temp_file "bcpmodes" suffix

let record_solve ~bcp problem path =
  let base = { Bsolo.Options.default with bcp } in
  let h =
    {
      R.h_run_id = "bcp-modes";
      h_engine = "bsolo";
      h_lb_method = "lpr";
      h_started = Unix.gettimeofday ();
      h_nvars = Problem.nvars problem;
      h_nconstraints = Array.length (Problem.constraints problem);
      h_flags = Bsolo.Replay.flags_of_options base;
      h_lb_every = base.lb_every;
      h_lgr_iters = base.lgr_iters;
    }
  in
  let recorder = R.open_file path h in
  let tel = Telemetry.Ctx.create ~timing:false ~recorder () in
  let outcome = Bsolo.Solver.solve ~options:{ base with telemetry = Some tel } problem in
  Telemetry.Ctx.close tel;
  outcome

(* A recording made under one mode must replay byte-identically under
   every other mode — the `bsolo replay --check --bcp` contract. *)
let cross_mode_replay () =
  List.iter
    (fun seed ->
      let problem = Gen.problem seed in
      List.iter
        (fun (rec_mode, rec_name) ->
          let path = tmp ".rec" in
          Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
          @@ fun () ->
          let recorded = record_solve ~bcp:rec_mode problem path in
          match R.read_file path with
          | Error msg -> Alcotest.fail msg
          | Ok rc ->
            List.iter
              (fun (replay_mode, replay_name) ->
                match Bsolo.Replay.run ~bcp:replay_mode problem rc with
                | Error msg -> Alcotest.failf "seed %d %s->%s: %s" seed rec_name replay_name msg
                | Ok rep ->
                  (match rep.Bsolo.Replay.mismatch with
                  | Some m ->
                    Alcotest.failf
                      "seed %d: recorded under %s, replayed under %s, diverged at event %d: \
                       recorded %s, replayed %s"
                      seed rec_name replay_name m.at m.expected m.got
                  | None -> ());
                  if rep.checked <> rep.total then
                    Alcotest.failf "seed %d %s->%s: %d/%d events checked" seed rec_name
                      replay_name rep.checked rep.total;
                  if
                    Bsolo.Outcome.status_name rep.outcome.Bsolo.Outcome.status
                    <> Bsolo.Outcome.status_name recorded.Bsolo.Outcome.status
                  then Alcotest.failf "seed %d %s->%s: outcome differs" seed rec_name replay_name)
              modes)
        modes)
    [ 3; 9; 17 ]

(* --- per-mode population sanity -------------------------------------------- *)

(* Forced modes must register every (multi-literal) constraint in their
   mode; hybrid must use both on a mixed instance. *)
let mode_populations () =
  let problem = Gen.problem 5 in
  let pops bcp =
    let tel = Telemetry.Ctx.silent () in
    let engine = Core.create ~telemetry:tel ~bcp problem in
    ignore (Core.propagate engine);
    let stats = Core.bcp_stats engine in
    ( Telemetry.Counter.get stats.Core.b_nwatched,
      Telemetry.Counter.get stats.Core.b_ncounting )
  in
  let w_watched, w_counting = pops Core.Watched in
  let c_watched, c_counting = pops Core.Counting in
  if w_watched = 0 then Alcotest.fail "forced watched registered no watched constraints";
  if c_watched <> 0 then Alcotest.fail "forced counting registered watched constraints";
  if c_counting = 0 then Alcotest.fail "forced counting registered no counting constraints";
  ignore w_counting

let suite =
  [
    Alcotest.test_case "lockstep engines agree at every fixpoint" `Slow lockstep_walk;
    QCheck_alcotest.to_alcotest qcheck_solver_equivalence;
    Alcotest.test_case "covering instances agree across modes and LB methods" `Slow
      solver_equivalence_covering;
    Alcotest.test_case "recordings replay across modes" `Slow cross_mode_replay;
    Alcotest.test_case "forced modes register accordingly" `Quick mode_populations;
  ]
