(* Observability subsystem: shared epoch, span sink, sampling-profile
   cells, heartbeat snapshots, Prometheus rendering and the inspect-side
   validators.  Everything runs against temp files or in-memory values —
   no solver needed. *)

module T = Telemetry

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let tmp_file suffix =
  let path = Filename.temp_file "bsolo-obs" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

(* --- Series self-decimation ------------------------------------------------ *)

let series_boundary_exact_capacity () =
  let s = T.Series.make ~capacity:8 ~fields:[ "v" ] "t.series" in
  for i = 1 to 8 do
    T.Series.observe s ~t:(float_of_int i) [| float_of_int i |]
  done;
  Alcotest.(check int) "exactly capacity points all retained" 8 (T.Series.length s);
  let ts = List.map fst (T.Series.samples s) in
  Alcotest.(check (list (float 0.))) "all offered points present" [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8. ]
    ts

let series_decimation_bounds () =
  let s = T.Series.make ~capacity:8 ~fields:[ "v" ] "t.series" in
  for i = 1 to 1000 do
    T.Series.observe s ~t:(float_of_int i) [| float_of_int i |]
  done;
  let n = T.Series.length s in
  Alcotest.(check bool) "never exceeds capacity" true (n <= 8);
  Alcotest.(check bool) "keeps a meaningful tail" true (n >= 4);
  let ts = List.map fst (T.Series.samples s) in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "retained offsets strictly increasing" true (increasing ts);
  (* every retained sample must be one of the offered points, values intact *)
  List.iter
    (fun (t, v) -> Alcotest.(check (float 0.)) "value rides with its offset" t v.(0))
    (T.Series.samples s)

let series_observe_now_survives () =
  let s = T.Series.make ~capacity:8 ~fields:[ "v" ] "t.series" in
  for i = 1 to 1000 do
    T.Series.observe s ~t:(float_of_int i) [| 0. |]
  done;
  (* after heavy decimation the stride drops most offers; observe_now
     must land regardless *)
  T.Series.observe_now s ~t:2000. [| 42. |];
  let found = List.exists (fun (t, v) -> t = 2000. && v.(0) = 42.) (T.Series.samples s) in
  Alcotest.(check bool) "observe_now kept despite stride" true found

let series_interleaved_fields () =
  let s = T.Series.make ~capacity:16 ~fields:[ "lb"; "ub" ] "t.gap" in
  T.Series.observe s ~t:0.1 [| 1.; 10. |];
  T.Series.observe s ~t:0.2 [| 2.; 9. |];
  (match T.Series.samples s with
  | [ (_, a); (_, b) ] ->
    Alcotest.(check (float 0.)) "first lb" 1. a.(0);
    Alcotest.(check (float 0.)) "first ub" 10. a.(1);
    Alcotest.(check (float 0.)) "second lb" 2. b.(0);
    Alcotest.(check (float 0.)) "second ub" 9. b.(1)
  | l -> Alcotest.failf "expected 2 samples, got %d" (List.length l));
  Alcotest.check_raises "arity mismatch rejected"
    (Invalid_argument "Series.observe: arity mismatch") (fun () ->
      T.Series.observe s ~t:0.3 [| 1. |])

(* --- profile cells ---------------------------------------------------------- *)

let cell_stack_round_trip () =
  let c = T.Profile.Cell.make ~name:"w" () in
  Alcotest.(check bool) "starts idle" true (T.Profile.Cell.stack c = []);
  T.Profile.Cell.push c T.Phase.Lower_bound;
  T.Profile.Cell.push c T.Phase.Simplex;
  Alcotest.(check bool) "stack outermost-first" true
    (T.Profile.Cell.stack c = [ T.Phase.Lower_bound; T.Phase.Simplex ]);
  Alcotest.(check bool) "leaf is innermost" true
    (T.Profile.Cell.leaf c = Some T.Phase.Simplex);
  T.Profile.Cell.pop c;
  Alcotest.(check bool) "pop reveals outer" true (T.Profile.Cell.leaf c = Some T.Phase.Lower_bound);
  T.Profile.Cell.pop c;
  Alcotest.(check bool) "balanced pops drain" true (T.Profile.Cell.stack c = [])

let cell_deep_nesting_balanced () =
  let c = T.Profile.Cell.make ~name:"w" () in
  for _ = 1 to 20 do
    T.Profile.Cell.push c T.Phase.Simplex
  done;
  Alcotest.(check bool) "published depth capped at 15" true
    (List.length (T.Profile.Cell.stack c) <= 15);
  for _ = 1 to 20 do
    T.Profile.Cell.pop c
  done;
  Alcotest.(check bool) "over-deep pushes stay balanced" true (T.Profile.Cell.stack c = [])

let cell_bounds_monotone () =
  let c = T.Profile.Cell.make ~name:"w" () in
  Alcotest.(check bool) "lb starts -inf" true (T.Profile.Cell.lb c = neg_infinity);
  Alcotest.(check bool) "ub starts +inf" true (T.Profile.Cell.ub c = infinity);
  T.Profile.Cell.update_lb c 5.;
  T.Profile.Cell.update_lb c 3.;
  Alcotest.(check (float 0.)) "lb keeps the max" 5. (T.Profile.Cell.lb c);
  T.Profile.Cell.update_ub c 10.;
  T.Profile.Cell.update_ub c ~self:false 20.;
  Alcotest.(check (float 0.)) "ub keeps the min" 10. (T.Profile.Cell.ub c);
  Alcotest.(check bool) "losing import does not flip provenance" true (T.Profile.Cell.ub_self c);
  T.Profile.Cell.update_ub c ~self:false 4.;
  Alcotest.(check (float 0.)) "better import taken" 4. (T.Profile.Cell.ub c);
  Alcotest.(check bool) "provenance now imported" false (T.Profile.Cell.ub_self c);
  T.Profile.Cell.bump_nodes c;
  T.Profile.Cell.bump_nodes c;
  Alcotest.(check int) "node counter" 2 (T.Profile.Cell.nodes c)

let cell_unobserved_is_silent () =
  let c = T.Profile.Cell.make ~observed:false ~name:"w" () in
  T.Profile.Cell.push c T.Phase.Simplex;
  Alcotest.(check bool) "unobserved cell publishes nothing" true (T.Profile.Cell.stack c = []);
  T.Profile.Cell.pop c

(* --- span sink + shared epoch ---------------------------------------------- *)

let spans_well_nested_file () =
  let path = tmp_file ".spans.json" in
  let sink = T.Span.open_file path in
  T.Span.header sink ~run_id:"cafebabe" ~started:1000.;
  T.Span.name_track sink ~track:1 "main";
  let ok =
    T.Span.with_span sink ~track:1 "outer" (fun () ->
        T.Span.with_span sink ~track:1 "inner" (fun () -> true))
  in
  Alcotest.(check bool) "with_span returns f's result" true ok;
  let sp = T.Span.begin_ sink ~track:2 "other-track" in
  T.Span.end_ sink sp;
  T.Span.close sink;
  match Inspect.load_spans path with
  | Error msg -> Alcotest.fail msg
  | Ok events ->
    (match Inspect.validate_spans events with
    | Error violations -> Alcotest.failf "unexpected violations: %s" (String.concat "; " violations)
    | Ok stats ->
      Alcotest.(check (option string)) "run id survives" (Some "cafebabe") stats.sp_run_id;
      Alcotest.(check bool) "nesting depth seen" true (stats.sp_max_depth >= 2);
      Alcotest.(check bool) "both tracks seen" true (stats.sp_tracks >= 2))

let spans_share_one_epoch () =
  (* Two sinks opened at different times must stamp on the same clock: a
     span emitted on the later sink carries the full offset since the
     process epoch, not a per-sink zero.  This is the cross-domain
     trace-skew regression test. *)
  let before = T.Epoch.now () in
  Unix.sleepf 0.02;
  let path = tmp_file ".spans.json" in
  let sink = T.Span.open_file path in
  T.Span.header sink ~run_id:"r2" ~started:(T.Epoch.t0 ());
  let sp = T.Span.begin_ sink ~track:1 "late" in
  T.Span.end_ sink sp;
  T.Span.close sink;
  match Inspect.load_spans path with
  | Error msg -> Alcotest.fail msg
  | Ok events ->
    let ts_of e =
      match Option.bind (Inspect.Json.member "ph" e) Inspect.Json.to_string_opt with
      | Some "B" -> Option.bind (Inspect.Json.member "ts" e) Inspect.Json.to_float
      | _ -> None
    in
    (match List.filter_map ts_of events with
    | [ ts ] ->
      Alcotest.(check bool)
        (Printf.sprintf "late sink keeps epoch offset (ts=%.0fus, floor=%.0fus)" ts (before *. 1e6))
        true
        (ts >= (before +. 0.02) *. 1e6 -. 1000.)
    | l -> Alcotest.failf "expected 1 begin event, got %d" (List.length l))

let spans_validator_rejects_bad () =
  let open T.Json in
  let ev ph name ts args = Obj [ "ph", String ph; "name", String name; "pid", Int 1; "tid", Int 1; "ts", Float ts; "args", Obj args ] in
  let header =
    Obj
      [
        "ph", String "M";
        "name", String "bsolo_run";
        "pid", Int 1;
        "tid", Int 0;
        "args", Obj [ "schema", String "bsolo-spans/1"; "run_id", String "x"; "epoch", Float 0. ];
      ]
  in
  (* E with no open B *)
  (match Inspect.validate_spans [ header; ev "E" "orphan" 10. [] ] with
  | Ok _ -> Alcotest.fail "orphan E accepted"
  | Error _ -> ());
  (* clock going backwards on one track *)
  (match
     Inspect.validate_spans
       [
         header;
         ev "B" "a" 100. [ "id", Int 1; "parent", Int 0 ];
         ev "E" "a" 50. [ "id", Int 1 ];
       ]
   with
  | Ok _ -> Alcotest.fail "backwards clock accepted"
  | Error _ -> ());
  (* two run headers *)
  (match Inspect.validate_spans [ header; header ] with
  | Ok _ -> Alcotest.fail "duplicate header accepted"
  | Error _ -> ())

(* --- heartbeat snapshots ---------------------------------------------------- *)

let snap_fixture () =
  T.Snapshot.
    {
      s_t = 1.25;
      s_seq = 3;
      s_members =
        [
          {
            m_name = "bsolo-lpr";
            m_phase = "simplex";
            m_lb = 10.;
            m_ub = 42.;
            m_nodes = 1234;
            m_node_rate = 987.5;
            m_ub_self = true;
          };
          {
            m_name = "bsolo-mis";
            m_phase = "idle";
            m_lb = neg_infinity;
            m_ub = infinity;
            m_nodes = 0;
            m_node_rate = 0.;
            m_ub_self = false;
          };
        ];
      s_deltas = [ "engine.conflicts", 17; "search.nodes", 400 ];
      s_best = Some (42., "bsolo-lpr");
    }

let snapshot_encode_decode_round_trip () =
  let s = snap_fixture () in
  match T.Snapshot.decode (T.Snapshot.encode s) with
  | None -> Alcotest.fail "decode rejected its own encode"
  | Some s' ->
    Alcotest.(check (float 0.)) "t" s.s_t s'.s_t;
    Alcotest.(check int) "seq" s.s_seq s'.s_seq;
    Alcotest.(check int) "member count" 2 (List.length s'.s_members);
    let m = List.hd s'.s_members and m0 = List.hd s.s_members in
    Alcotest.(check string) "name" m0.m_name m.m_name;
    Alcotest.(check string) "phase" m0.m_phase m.m_phase;
    Alcotest.(check (float 0.)) "lb" m0.m_lb m.m_lb;
    Alcotest.(check (float 0.)) "ub" m0.m_ub m.m_ub;
    Alcotest.(check int) "nodes" m0.m_nodes m.m_nodes;
    Alcotest.(check (float 0.)) "rate" m0.m_node_rate m.m_node_rate;
    Alcotest.(check bool) "ub_self" m0.m_ub_self m.m_ub_self;
    let idle = List.nth s'.s_members 1 in
    Alcotest.(check bool) "absent lb decodes -inf" true (idle.m_lb = neg_infinity);
    Alcotest.(check bool) "absent ub decodes +inf" true (idle.m_ub = infinity);
    Alcotest.(check bool) "deltas survive" true (s'.s_deltas = s.s_deltas);
    (match s'.s_best with
    | Some (c, who) ->
      Alcotest.(check (float 0.)) "best cost" 42. c;
      Alcotest.(check string) "best provenance" "bsolo-lpr" who
    | None -> Alcotest.fail "best lost")

let snapshot_non_snapshot_lines () =
  let open T.Json in
  Alcotest.(check bool) "header is not a snapshot" true
    (T.Snapshot.decode (Obj [ "schema", String "bsolo-heartbeat/1" ]) = None);
  Alcotest.(check bool) "end record is not a snapshot" true
    (T.Snapshot.decode (Obj [ "end", Bool true; "t", Float 1. ]) = None)

let heartbeat_file_round_trip () =
  let path = tmp_file ".hb.jsonl" in
  let w = T.Snapshot.open_file path ~run_id:"deadbeef" ~started:1234.5 ~every:0.5 in
  let s = snap_fixture () in
  T.Snapshot.write w s;
  T.Snapshot.write w { s with s_t = 2.5 };
  T.Snapshot.close w;
  T.Snapshot.close w (* idempotent *);
  match Inspect.load_trace path with
  | Error msg -> Alcotest.fail msg
  | Ok (lines, skipped) ->
    Alcotest.(check int) "no torn lines" 0 skipped;
    (match lines with
    | header :: _ ->
      Alcotest.(check (option string)) "header schema" (Some "bsolo-heartbeat/1")
        (Inspect.schema_of header)
    | [] -> Alcotest.fail "empty heartbeat file");
    (match Inspect.heartbeat_check lines with
    | Ok _ -> ()
    | Error violations -> Alcotest.failf "violations: %s" (String.concat "; " violations))

(* The SIGUSR1 path: Ticker.request must force an out-of-band snapshot
   at the next ~50 ms quantum — long before the periodic [every]
   elapses — with the writer's sequence numbering intact. *)
let ticker_request_forces_snapshot () =
  let path = tmp_file ".hb.jsonl" in
  let w =
    T.Snapshot.open_file path ~run_id:"deadbeef" ~started:(Unix.gettimeofday ()) ~every:60.
  in
  let tk = T.Snapshot.Ticker.start w ~every:60. in
  Unix.sleepf 0.15 (* let the start-of-run snapshot land *);
  T.Snapshot.Ticker.request tk;
  Unix.sleepf 0.3 (* several polling quanta, still way under [every] *);
  T.Snapshot.Ticker.stop tk;
  T.Snapshot.close w;
  match Inspect.load_trace path with
  | Error msg -> Alcotest.fail msg
  | Ok (lines, _) ->
    let snaps = List.filter_map T.Snapshot.decode lines in
    (* start + requested + final stop snapshot: a 60 s periodic tick
       cannot have fired inside a sub-second test, so the middle one can
       only come from the request. *)
    Alcotest.(check int) "snapshots" 3 (List.length snaps);
    List.iteri
      (fun i (s : T.Snapshot.snap) ->
        Alcotest.(check int) (Printf.sprintf "seq of snapshot %d" i) i s.s_seq)
      snaps

(* The first advancing take has no previous observation: its node rates
   must be 0, not nodes-so-far divided by the near-zero interval since
   the collector was created. *)
let collector_first_tick_rate_zero () =
  let c = T.Profile.Cell.make ~observed:true ~name:"rate-first-tick" () in
  T.Profile.register c;
  Fun.protect ~finally:(fun () -> T.Profile.unregister c) @@ fun () ->
  for _ = 1 to 1000 do
    T.Profile.Cell.bump_nodes c
  done;
  let coll = T.Snapshot.collector () in
  Unix.sleepf 0.01;
  let s = T.Snapshot.take coll in
  match
    List.find_opt (fun (m : T.Snapshot.member) -> m.m_name = "rate-first-tick") s.s_members
  with
  | None -> Alcotest.fail "cell not seen by the collector"
  | Some m -> Alcotest.(check (float 0.)) "first-tick rate is 0" 0. m.m_node_rate

(* A forced (SIGUSR1) snapshot peeks: it must not advance the collector,
   so the next periodic take's counter deltas still cover the whole
   interval since the previous periodic take rather than only the part
   after the forced snapshot. *)
let peek_preserves_periodic_deltas () =
  let reg = T.Registry.create () in
  let cnt = T.Registry.counter reg "x.events" in
  let coll = T.Snapshot.collector ~registry:reg () in
  ignore (T.Snapshot.take coll) (* prime: the first periodic tick *);
  T.Counter.add cnt 5;
  let forced = T.Snapshot.peek coll in
  Alcotest.(check bool) "forced snapshot sees the deltas so far" true
    (List.assoc_opt "x.events" forced.s_deltas = Some 5);
  T.Counter.add cnt 3;
  let periodic = T.Snapshot.take coll in
  Alcotest.(check bool) "periodic deltas cover the whole interval" true
    (List.assoc_opt "x.events" periodic.s_deltas = Some 8);
  let next = T.Snapshot.take coll in
  Alcotest.(check bool) "nothing new after the advancing take" true
    (List.assoc_opt "x.events" next.s_deltas = None)

let heartbeat_check_catches_widening () =
  let s = snap_fixture () in
  let widened =
    {
      s with
      s_t = 2.0;
      s_seq = 4;
      s_members =
        List.map
          (fun (m : T.Snapshot.member) ->
            if m.m_name = "bsolo-lpr" then { m with m_lb = 5. } else m)
          s.s_members;
    }
  in
  let open T.Json in
  let header = Obj [ "schema", String "bsolo-heartbeat/1" ] in
  let end_rec = Obj [ "end", Bool true ] in
  let lines = [ header; T.Snapshot.encode s; T.Snapshot.encode widened; end_rec ] in
  match Inspect.heartbeat_check lines with
  | Ok _ -> Alcotest.fail "widening gap accepted"
  | Error violations ->
    Alcotest.(check bool) "names the widening member" true
      (List.exists (fun v -> contains v "bsolo-lpr") violations)

(* --- Prometheus text -------------------------------------------------------- *)

let promtext_render () =
  let reg = T.Registry.create () in
  let c = T.Registry.counter reg "engine.decisions" in
  T.Counter.add c 5;
  let g = T.Registry.gauge reg "lp.objective" in
  T.Gauge.set g 3.5;
  let h = T.Registry.histogram reg "lb.mis.value" in
  T.Histogram.observe h 1;
  T.Histogram.observe h 3;
  T.Histogram.observe h 100;
  let text = T.Promtext.render reg in
  let has s = contains text s in
  Alcotest.(check bool) "counter TYPE line" true (has "# TYPE bsolo_engine_decisions counter");
  Alcotest.(check bool) "counter value" true (has "bsolo_engine_decisions 5");
  Alcotest.(check bool) "gauge value" true (has "bsolo_lp_objective 3.5");
  Alcotest.(check bool) "histogram TYPE line" true (has "# TYPE bsolo_lb_mis_value histogram");
  Alcotest.(check bool) "+Inf bucket carries the total" true
    (has "bsolo_lb_mis_value_bucket{le=\"+Inf\"} 3");
  Alcotest.(check bool) "histogram count" true (has "bsolo_lb_mis_value_count 3")

let promtext_sanitize () =
  Alcotest.(check string) "dots and dashes become underscores" "lb_mis_tightness_pm"
    (T.Promtext.sanitize "lb.mis.tightness-pm")

let promtext_write_file_atomic () =
  let path = tmp_file ".prom" in
  let reg = T.Registry.create () in
  T.Counter.incr (T.Registry.counter reg "search.nodes");
  T.Promtext.write_file path reg;
  let ic = open_in path in
  let first = input_line ic in
  close_in ic;
  Alcotest.(check bool) "file starts with a comment header" true
    (String.length first > 0 && first.[0] = '#')

(* --- suite ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "series: exact capacity retained" `Quick series_boundary_exact_capacity;
    Alcotest.test_case "series: decimation bounds" `Quick series_decimation_bounds;
    Alcotest.test_case "series: observe_now survives stride" `Quick series_observe_now_survives;
    Alcotest.test_case "series: interleaved multi-field" `Quick series_interleaved_fields;
    Alcotest.test_case "cell: stack round trip" `Quick cell_stack_round_trip;
    Alcotest.test_case "cell: deep nesting balanced" `Quick cell_deep_nesting_balanced;
    Alcotest.test_case "cell: bounds monotone" `Quick cell_bounds_monotone;
    Alcotest.test_case "cell: unobserved silent" `Quick cell_unobserved_is_silent;
    Alcotest.test_case "spans: well-nested file validates" `Quick spans_well_nested_file;
    Alcotest.test_case "spans: one shared epoch (skew)" `Quick spans_share_one_epoch;
    Alcotest.test_case "spans: validator rejects bad streams" `Quick spans_validator_rejects_bad;
    Alcotest.test_case "heartbeat: encode/decode round trip" `Quick snapshot_encode_decode_round_trip;
    Alcotest.test_case "heartbeat: non-snapshot lines" `Quick snapshot_non_snapshot_lines;
    Alcotest.test_case "heartbeat: file round trip + check" `Quick heartbeat_file_round_trip;
    Alcotest.test_case "heartbeat: SIGUSR1 request forces snapshot" `Quick
      ticker_request_forces_snapshot;
    Alcotest.test_case "heartbeat: first-tick node rate is zero" `Quick
      collector_first_tick_rate_zero;
    Alcotest.test_case "heartbeat: forced peek keeps periodic deltas whole" `Quick
      peek_preserves_periodic_deltas;
    Alcotest.test_case "heartbeat: check catches widening gap" `Quick heartbeat_check_catches_widening;
    Alcotest.test_case "promtext: render" `Quick promtext_render;
    Alcotest.test_case "promtext: sanitize" `Quick promtext_sanitize;
    Alcotest.test_case "promtext: write_file" `Quick promtext_write_file_atomic;
  ]
