let () =
  Alcotest.run "pbo-repro"
    [
      ("lit", Test_lit.suite);
      ("value", Test_value.suite);
      ("constr", Test_constr.suite);
      ("problem", Test_problem.suite);
      ("opb", Test_opb.suite);
      ("encode", Test_encode.suite);
      ("containers", Test_containers.suite);
      ("engine", Test_engine.suite);
      ("simplex", Test_simplex.suite);
      ("lagrangian", Test_lagrangian.suite);
      ("lowerbound", Test_lowerbound.suite);
      ("knapsack", Test_knapsack.suite);
      ("preprocess", Test_preprocess.suite);
      ("strengthen", Test_strengthen.suite);
      ("benchgen", Test_benchgen.suite);
      ("benchmark-files", Test_benchmark_files.suite);
      ("solver-edge", Test_solver_edge.suite);
      ("enumerate", Test_enumerate.suite);
      ("certify", Test_certify.suite);
      ("dimacs", Test_dimacs.suite);
      ("bcp", Test_bcp.suite);
      ("maxsat", Test_maxsat.suite);
      ("wbo", Test_wbo.suite);
      ("portfolio", Test_portfolio.suite);
      ("milp", Test_milp.suite);
      ("cutting-planes", Test_cutting_planes.suite);
      ("proof", Test_proof.suite);
      ("telemetry", Test_telemetry.suite);
      ("observability", Test_observability.suite);
      ("inspect", Test_inspect.suite);
      ("recorder", Test_recorder.suite);
      ("fuzz", Test_fuzz.suite);
      ("stress", Test_stress.suite);
      ("solvers", Test_solvers.suite);
    ]
