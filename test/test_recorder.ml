(* Flight recorder: binary codec round trip, ring wraparound, torn-tail
   recovery, portfolio stitching, forensics accounting and deterministic
   replay — everything against temp files, with the solver runs on the
   small generated instances. *)

module R = Telemetry.Recorder

let tmp suffix =
  let path = Filename.temp_file "bsolo-rec" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let header ?(engine = "bsolo") ?(lb = "lpr") ?(flags = 0) ?(nvars = 5) () =
  {
    R.h_run_id = "cafe0123";
    h_engine = engine;
    h_lb_method = lb;
    h_started = 1234.5625;
    h_nvars = nvars;
    h_nconstraints = 7;
    h_flags = flags;
    h_lb_every = 1;
    h_lgr_iters = 50;
  }

let all_events =
  [
    R.Decision { level = 1; var = 3; value = true };
    R.Decision { level = 2; var = 0; value = false };
    R.Lb_eval { proc = "lpr"; value = 9; path = 2; upper = 14; elapsed_us = 137; pruned = false };
    R.Learned { size = 4; level = 2 };
    R.Backjump { from_level = 2; to_level = 1 };
    R.Prune { blame = "lpr"; lb = 12; path = 3; upper = 12; from_level = 3; to_level = 1 };
    R.Incumbent { cost = 12 };
    R.Import { cost = 11; member = "bsolo-mis" };
    R.Restart;
    R.Fin { status = "optimal"; nodes = 42; decisions = 40; conflicts = 17 };
  ]

let events_of (rc : R.recording) = List.map snd rc.r_events

let test_codec_round_trip () =
  let path = tmp ".rec" in
  let h = header ~flags:0x3bf () in
  let w = R.open_file path h in
  List.iter (R.emit w) all_events;
  R.close w;
  R.close w (* idempotent *);
  match R.read_file path with
  | Error msg -> Alcotest.fail msg
  | Ok rc ->
    Alcotest.(check bool) "not truncated" false rc.r_truncated;
    (match rc.r_header with
    | None -> Alcotest.fail "header lost"
    | Some h' ->
      Alcotest.(check bool) "header round-trips" true (h = h');
      Alcotest.(check string) "run id" "cafe0123" h'.h_run_id);
    Alcotest.(check int) "event count" (List.length all_events) (List.length rc.r_events);
    List.iter2
      (fun expected got ->
        Alcotest.(check string) "event round-trips" (R.event_to_string expected)
          (R.event_to_string got);
        Alcotest.(check bool) "event equal" true (expected = got))
      all_events (events_of rc)

let test_ring_wraparound () =
  let path = tmp ".rec" in
  let w = R.open_file ~ring:5 path (header ()) in
  for i = 1 to 12 do
    R.decision w ~level:i ~var:i ~value:(i mod 2 = 0)
  done;
  Alcotest.(check int) "events seen" 12 (R.events_written w);
  Alcotest.(check int) "dropped" 7 (R.ring_dropped w);
  R.close w;
  match R.read_file path with
  | Error msg -> Alcotest.fail msg
  | Ok rc -> (
    Alcotest.(check bool) "not truncated" false rc.r_truncated;
    match events_of rc with
    | R.Gap { dropped } :: rest ->
      Alcotest.(check int) "gap records the drop count" 7 dropped;
      Alcotest.(check int) "ring keeps the last 5" 5 (List.length rest);
      List.iteri
        (fun i e ->
          match e with
          | R.Decision { level; _ } -> Alcotest.(check int) "tail in order" (8 + i) level
          | e -> Alcotest.failf "unexpected event %s" (R.event_name e))
        rest
    | e :: _ -> Alcotest.failf "expected Gap first, got %s" (R.event_name e)
    | [] -> Alcotest.fail "empty recording")

let test_ring_no_wrap_no_gap () =
  let path = tmp ".rec" in
  let w = R.open_file ~ring:16 path (header ()) in
  R.decision w ~level:1 ~var:0 ~value:true;
  R.restart w;
  R.close w;
  match R.read_file path with
  | Error msg -> Alcotest.fail msg
  | Ok rc ->
    Alcotest.(check bool) "no gap frame when nothing dropped" false
      (List.exists (function R.Gap _ -> true | _ -> false) (events_of rc));
    Alcotest.(check int) "both events kept" 2 (List.length rc.r_events)

(* Kill-mid-write recovery: cut the file inside the final frame and the
   reader must return every intact frame, flagged truncated. *)
let test_truncated_tail () =
  let path = tmp ".rec" in
  let w = R.open_file path (header ()) in
  List.iter (R.emit w) all_events;
  R.close w;
  let size = (Unix.stat path).Unix.st_size in
  Unix.truncate path (size - 3);
  match R.read_file path with
  | Error msg -> Alcotest.fail msg
  | Ok rc ->
    Alcotest.(check bool) "flagged truncated" true rc.r_truncated;
    (match rc.r_header with
    | Some h -> Alcotest.(check string) "header survives" "cafe0123" h.h_run_id
    | None -> Alcotest.fail "header lost");
    (* The torn frame is the Fin; everything before it survives. *)
    Alcotest.(check int) "intact prefix kept" (List.length all_events - 1)
      (List.length rc.r_events);
    Alcotest.(check bool) "fin is the torn frame" false
      (List.exists (function R.Fin _ -> true | _ -> false) (events_of rc))

(* Cut even harder: inside the header frame.  Still not a read error —
   the caller learns there is no header and no events. *)
let test_truncated_header () =
  let path = tmp ".rec" in
  let w = R.open_file path (header ()) in
  R.close w;
  Unix.truncate path (String.length R.schema + 3);
  match R.read_file path with
  | Error msg -> Alcotest.fail msg
  | Ok rc ->
    Alcotest.(check bool) "truncated" true rc.r_truncated;
    Alcotest.(check bool) "no header" true (rc.r_header = None);
    Alcotest.(check int) "no events" 0 (List.length rc.r_events)

let test_stitch_sections () =
  let part name events =
    let path = tmp ".part" in
    let w = R.open_file path (header ~engine:name ()) in
    List.iter (R.emit w) events;
    R.close w;
    path
  in
  let a = part "bsolo-lpr" [ R.Decision { level = 1; var = 0; value = true }; R.Restart ] in
  let b = part "bsolo-mis" [ R.Incumbent { cost = 3 } ] in
  let base = tmp ".rec" in
  match R.stitch base (header ~engine:"portfolio" ()) [ "bsolo-lpr", a; "bsolo-mis", b ] with
  | Error msg -> Alcotest.fail msg
  | Ok () -> (
    match R.read_file base with
    | Error msg -> Alcotest.fail msg
    | Ok rc -> (
      match events_of rc with
      | [ R.Section "bsolo-lpr"; R.Decision _; R.Restart; R.Section "bsolo-mis"; R.Incumbent _ ]
        -> ()
      | evs ->
        Alcotest.failf "unexpected stitched stream: %s"
          (String.concat "; " (List.map R.event_name evs))))

(* --- recorded solver runs -------------------------------------------------- *)

let record_solve ?(lb = Bsolo.Options.Lpr) problem path =
  let base = Bsolo.Options.with_lb lb in
  let h =
    {
      R.h_run_id = "test";
      h_engine = "bsolo";
      h_lb_method = String.lowercase_ascii (Bsolo.Options.lb_method_name lb);
      h_started = Unix.gettimeofday ();
      h_nvars = Pbo.Problem.nvars problem;
      h_nconstraints = Array.length (Pbo.Problem.constraints problem);
      h_flags = Bsolo.Replay.flags_of_options base;
      h_lb_every = base.lb_every;
      h_lgr_iters = base.lgr_iters;
    }
  in
  let recorder = R.open_file path h in
  let tel = Telemetry.Ctx.create ~timing:false ~recorder () in
  let outcome = Bsolo.Solver.solve ~options:{ base with telemetry = Some tel } problem in
  Telemetry.Ctx.close tel;
  outcome

(* The forensics invariant: every decision is closed by exactly one
   later conflict/prune (or stays open), and each prune is itself a
   node, so blame totals reconcile with the engine's node counter. *)
let test_forensics_accounting () =
  List.iter
    (fun seed ->
      let problem = Gen.problem seed in
      let path = tmp ".rec" in
      ignore (record_solve problem path);
      match R.read_file path with
      | Error msg -> Alcotest.fail msg
      | Ok rc -> (
        match Inspect.Forensics.analyze rc with
        | [ a ] -> (
          match a.Inspect.Forensics.a_fin with
          | Some (_, nodes) ->
            Alcotest.(check int)
              (Printf.sprintf "seed %d: blame accounts for every node" seed)
              nodes a.a_accounted
          | None -> Alcotest.fail "recording has no fin frame")
        | l -> Alcotest.failf "expected one section, got %d" (List.length l)))
    [ 0; 3; 7; 12; 23 ]

(* Deterministic replay: re-executing the recorded decision sequence
   reproduces the recorded event stream byte for byte. *)
let test_replay_matches () =
  List.iter
    (fun (lb, seed) ->
      let problem = Gen.problem seed in
      let path = tmp ".rec" in
      let recorded = record_solve ~lb problem path in
      match R.read_file path with
      | Error msg -> Alcotest.fail msg
      | Ok rc -> (
        match Bsolo.Replay.run problem rc with
        | Error msg -> Alcotest.fail msg
        | Ok rep ->
          (match rep.Bsolo.Replay.mismatch with
          | Some m ->
            Alcotest.failf "seed %d: diverged at event %d: recorded %s, replayed %s" seed m.at
              m.expected m.got
          | None -> ());
          Alcotest.(check int)
            (Printf.sprintf "seed %d: every event checked" seed)
            rep.total rep.checked;
          Alcotest.(check string) "same status"
            (Bsolo.Outcome.status_name recorded.Bsolo.Outcome.status)
            (Bsolo.Outcome.status_name rep.outcome.Bsolo.Outcome.status)))
    [ Bsolo.Options.Lpr, 3; Bsolo.Options.Mis, 11; Bsolo.Options.Plain, 17; Bsolo.Options.Lgr, 29 ]

let test_replay_rejects_ring () =
  let problem = Gen.problem 3 in
  let path = tmp ".rec" in
  let w = R.open_file ~ring:2 path (header ~nvars:(Pbo.Problem.nvars problem) ()) in
  for i = 1 to 5 do
    R.decision w ~level:i ~var:0 ~value:true
  done;
  R.close w;
  match R.read_file path with
  | Error msg -> Alcotest.fail msg
  | Ok rc -> (
    match Bsolo.Replay.run problem rc with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "replay accepted a dropped-prefix ring recording")

let suite =
  [
    Alcotest.test_case "codec: all events round-trip" `Quick test_codec_round_trip;
    Alcotest.test_case "ring: wraparound keeps tail + gap" `Quick test_ring_wraparound;
    Alcotest.test_case "ring: no gap without wraparound" `Quick test_ring_no_wrap_no_gap;
    Alcotest.test_case "reader: torn tail recovered" `Quick test_truncated_tail;
    Alcotest.test_case "reader: torn header tolerated" `Quick test_truncated_header;
    Alcotest.test_case "stitch: member sections" `Quick test_stitch_sections;
    Alcotest.test_case "forensics: blame accounts for all nodes" `Quick test_forensics_accounting;
    Alcotest.test_case "replay: recorded runs replay exactly" `Quick test_replay_matches;
    Alcotest.test_case "replay: rejects ring recordings" `Quick test_replay_rejects_ring;
  ]
