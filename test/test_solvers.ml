(* End-to-end oracle: every solver agrees with the brute-force optimum on
   small random instances. *)
open Pbo

let check_solver name solve seed problem =
  let reference = Bsolo.Exhaustive.optimum problem in
  let outcome = solve problem in
  match reference, outcome.Bsolo.Outcome.status, outcome.Bsolo.Outcome.best with
  | None, Bsolo.Outcome.Unsatisfiable, _ -> ()
  | None, s, _ ->
    Alcotest.failf "%s seed=%d: expected UNSAT, got %s" name seed (Bsolo.Outcome.status_name s)
  | Some (_, opt), (Bsolo.Outcome.Optimal | Bsolo.Outcome.Satisfiable), Some (m, c) ->
    if not (Model.satisfies problem m) then
      Alcotest.failf "%s seed=%d: reported model violates a constraint" name seed;
    if Model.cost problem m <> c then
      Alcotest.failf "%s seed=%d: reported cost %d but model costs %d" name seed c
        (Model.cost problem m);
    if c <> opt then Alcotest.failf "%s seed=%d: cost %d, optimum %d" name seed c opt
  | Some _, s, _ ->
    Alcotest.failf "%s seed=%d: expected optimum, got %s" name seed (Bsolo.Outcome.status_name s)

let solvers =
  [
    "bsolo-plain", (fun p -> Bsolo.Solver.solve ~options:(Bsolo.Options.with_lb Bsolo.Options.Plain) p);
    "bsolo-mis", (fun p -> Bsolo.Solver.solve ~options:(Bsolo.Options.with_lb Bsolo.Options.Mis) p);
    "bsolo-lgr", (fun p -> Bsolo.Solver.solve ~options:(Bsolo.Options.with_lb Bsolo.Options.Lgr) p);
    "bsolo-lpr", (fun p -> Bsolo.Solver.solve ~options:(Bsolo.Options.with_lb Bsolo.Options.Lpr) p);
    "pbs-like", (fun p -> Bsolo.Linear_search.solve p);
    "galena-like", (fun p -> Bsolo.Linear_search.solve ~pb_learning:true p);
    "milp", (fun p -> Milp.Branch_and_bound.solve p);
  ]

let agreement_cases =
  let case (name, solve) =
    let run () =
      for seed = 0 to 80 do
        check_solver name solve seed (Gen.problem seed)
      done;
      for seed = 0 to 40 do
        check_solver name solve seed (Gen.covering seed)
      done
    in
    Alcotest.test_case (name ^ " matches brute force") `Slow run
  in
  List.map case solvers

let satisfaction_case =
  let run () =
    for seed = 0 to 40 do
      let problem = Gen.problem ~config:{ Gen.default with with_objective = false } seed in
      let reference = Bsolo.Exhaustive.optimum problem in
      let outcome = Bsolo.Solver.solve problem in
      match reference, outcome.Bsolo.Outcome.status with
      | None, Bsolo.Outcome.Unsatisfiable -> ()
      | Some _, Bsolo.Outcome.Satisfiable ->
        (match outcome.best with
        | Some (m, _) ->
          if not (Model.satisfies problem m) then Alcotest.failf "seed=%d: bad model" seed
        | None -> Alcotest.failf "seed=%d: no model" seed)
      | _, s ->
        Alcotest.failf "seed=%d: mismatch (%s)" seed (Bsolo.Outcome.status_name s)
    done
  in
  [ Alcotest.test_case "satisfaction instances" `Slow run ]

let suite = agreement_cases @ satisfaction_case

(* Larger instances stress bound conflicts and the LP path more. *)
let larger_cases =
  let config = { Gen.default with nvars = 12; nconstrs = 16; max_cost = 20; max_coeff = 6 } in
  let case (name, solve) =
    let run () =
      for seed = 100 to 140 do
        check_solver name solve seed (Gen.problem ~config seed)
      done;
      for seed = 100 to 120 do
        check_solver name solve seed (Gen.covering ~nvars:12 ~nclauses:18 seed)
      done
    in
    Alcotest.test_case (name ^ " matches brute force (larger)") `Slow run
  in
  List.map case solvers

(* Telemetry end-to-end: the machine-readable report must agree with the
   returned outcome, and the traced incumbent trajectory must be strictly
   decreasing. *)
let telemetry_cases =
  let run () =
    let config = { Gen.default with nvars = 12; nconstrs = 16; max_cost = 20; max_coeff = 6 } in
    (* pick an instance that has a model, so incumbents are traced *)
    let rec sat_instance seed =
      if seed > 140 then Alcotest.fail "no satisfiable instance in seed range"
      else begin
        let problem = Gen.problem ~config seed in
        match Bsolo.Exhaustive.optimum problem with
        | Some _ -> problem
        | None -> sat_instance (seed + 1)
      end
    in
    let problem = sat_instance 100 in
    let path = Filename.temp_file "bsolo_e2e" ".jsonl" in
    let tel =
      Telemetry.Ctx.create ~timing:true ~trace:(Telemetry.Trace.open_file path) ()
    in
    let options = { Bsolo.Options.default with telemetry = Some tel } in
    let outcome = Bsolo.Solver.solve ~options problem in
    let report = Bsolo.Report.make ~problem ~options ~telemetry:tel outcome in
    (match Telemetry.Json.of_string (Bsolo.Report.to_string report) with
    | Error e -> Alcotest.failf "report does not parse: %s" e
    | Ok json ->
      (match Bsolo.Report.counters_of_json json with
      | None -> Alcotest.fail "report has no counters"
      | Some c ->
        if c <> outcome.Bsolo.Outcome.counters then
          Alcotest.fail "report counters differ from Outcome.counters"));
    Telemetry.Ctx.close tel;
    let ic = open_in path in
    let incumbents = ref [] in
    (try
       while true do
         let line = input_line ic in
         match Telemetry.Json.of_string line with
         | Error e -> Alcotest.failf "invalid trace line %S: %s" line e
         | Ok json ->
           if Option.bind (Telemetry.Json.member "ev" json) Telemetry.Json.to_string_opt
              = Some "incumbent"
           then
             match Option.bind (Telemetry.Json.member "cost" json) Telemetry.Json.to_int with
             | Some cost -> incumbents := cost :: !incumbents
             | None -> Alcotest.failf "incumbent event lacks a cost: %S" line
       done
     with End_of_file -> close_in ic);
    Sys.remove path;
    let trajectory = List.rev !incumbents in
    if trajectory = [] then Alcotest.fail "no incumbent events traced";
    let rec decreasing = function
      | a :: (b :: _ as rest) -> a > b && decreasing rest
      | [ _ ] | [] -> true
    in
    if not (decreasing trajectory) then
      Alcotest.fail "traced incumbent trajectory is not strictly decreasing";
    (match outcome.Bsolo.Outcome.best with
    | Some (_, c) ->
      Alcotest.(check int) "last traced incumbent is the final cost" c
        (List.nth trajectory (List.length trajectory - 1))
    | None -> Alcotest.fail "expected a model on this instance")
  in
  [ Alcotest.test_case "telemetry report and trace agree with outcome" `Quick run ]

let suite = suite @ larger_cases @ telemetry_cases
