(* Telemetry subsystem: timers, registry, JSON, trace sink, reports. *)

module T = Telemetry

let burn () =
  (* deterministic busy work so nested phases accumulate measurable time *)
  let acc = ref 0 in
  for i = 1 to 200_000 do
    acc := !acc + (i mod 7)
  done;
  Sys.opaque_identity !acc

let timer_nesting () =
  let t = T.Timer.create ~enabled:true () in
  let r =
    T.Timer.with_phase t T.Phase.Lower_bound (fun () ->
        ignore (burn ());
        let inner = T.Timer.with_phase t T.Phase.Simplex (fun () -> ignore (burn ()); 42) in
        ignore (burn ());
        inner)
  in
  Alcotest.(check int) "with_phase returns f's result" 42 r;
  let lb = T.Timer.self_seconds t T.Phase.Lower_bound in
  let sx = T.Timer.self_seconds t T.Phase.Simplex in
  Alcotest.(check bool) "outer self time positive" true (lb > 0.);
  Alcotest.(check bool) "inner self time positive" true (sx > 0.);
  let total = T.Timer.total_seconds t in
  let sum = List.fold_left (fun acc (_, s) -> acc +. s) 0. (T.Timer.snapshot t) in
  Alcotest.(check (float 1e-9)) "snapshot partitions total" total sum;
  Alcotest.(check (float 0.)) "unused phase is zero" 0. (T.Timer.self_seconds t T.Phase.Parse)

let timer_accumulates () =
  let t = T.Timer.create ~enabled:true () in
  T.Timer.with_phase t T.Phase.Propagate (fun () -> ignore (burn ()));
  let once = T.Timer.self_seconds t T.Phase.Propagate in
  T.Timer.with_phase t T.Phase.Propagate (fun () -> ignore (burn ()));
  let twice = T.Timer.self_seconds t T.Phase.Propagate in
  Alcotest.(check bool) "second call adds time" true (twice > once);
  T.Timer.reset t;
  Alcotest.(check (float 0.)) "reset clears" 0. (T.Timer.total_seconds t)

let timer_disabled () =
  let t = T.Timer.create () in
  let r = T.Timer.with_phase t T.Phase.Propagate (fun () -> ignore (burn ()); "ok") in
  Alcotest.(check string) "disabled timer still runs f" "ok" r;
  Alcotest.(check (float 0.)) "disabled timer accumulates nothing" 0. (T.Timer.total_seconds t)

let timer_exception_safe () =
  let t = T.Timer.create ~enabled:true () in
  (try T.Timer.with_phase t T.Phase.Analyze (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "time recorded despite raise" true
    (T.Timer.self_seconds t T.Phase.Analyze >= 0.);
  (* the phase stack must have been popped: a new phase gets its own time *)
  T.Timer.with_phase t T.Phase.Propagate (fun () -> ignore (burn ()));
  Alcotest.(check bool) "stack popped after raise" true
    (T.Timer.self_seconds t T.Phase.Propagate > 0.)

let registry_round_trip () =
  let reg = T.Registry.create () in
  let c = T.Registry.counter reg "engine.decisions" in
  T.Counter.incr c;
  T.Counter.add c 4;
  let c' = T.Registry.counter reg "engine.decisions" in
  Alcotest.(check bool) "find-or-create returns the same handle" true (c == c');
  Alcotest.(check (option int)) "find_counter reads the value" (Some 5)
    (T.Registry.find_counter reg "engine.decisions");
  Alcotest.(check (option int)) "missing counter is None" None
    (T.Registry.find_counter reg "engine.nope");
  let g = T.Registry.gauge reg "lgr.best_bound" in
  T.Gauge.set_max g 3.5;
  T.Gauge.set_max g 2.0;
  Alcotest.(check (option (float 0.))) "gauge keeps the max" (Some 3.5)
    (T.Registry.find_gauge reg "lgr.best_bound");
  ignore (T.Registry.counter reg "a.first");
  let names = List.map fst (T.Registry.counters reg) in
  Alcotest.(check (list string)) "snapshot is sorted by name"
    [ "a.first"; "engine.decisions" ] names

let histogram_buckets () =
  let h = T.Histogram.make "test" in
  List.iter (T.Histogram.observe h) [ 0; 1; 1; 2; 3; 8; 100 ];
  Alcotest.(check int) "total" 7 (T.Histogram.total h);
  Alcotest.(check int) "max" 100 (T.Histogram.max_value h);
  Alcotest.(check (float 1e-9)) "mean" (115. /. 7.) (T.Histogram.mean h);
  let snap = T.Histogram.snapshot h in
  Alcotest.(check int) "bucket [1,1] holds both ones" 2
    (List.assoc_opt (1, 1) (List.map (fun (lo, hi, n) -> (lo, hi), n) snap)
    |> Option.value ~default:0);
  Alcotest.(check int) "bucket counts sum to total" 7
    (List.fold_left (fun acc (_, _, n) -> acc + n) 0 snap)

let json_round_trip () =
  let v =
    T.Json.Obj
      [
        "s", T.Json.String "a\"b\\c\n\t\xe2\x82\xac";
        "i", T.Json.Int (-42);
        "f", T.Json.Float 1.5;
        "b", T.Json.Bool true;
        "n", T.Json.Null;
        "l", T.Json.List [ T.Json.Int 1; T.Json.List []; T.Json.Obj [] ];
      ]
  in
  match T.Json.of_string (T.Json.to_string v) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok v' -> Alcotest.(check bool) "round-trips structurally" true (v = v')

let json_parser_errors () =
  List.iter
    (fun s ->
      match T.Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ]

let trace_round_trip () =
  let path = Filename.temp_file "bsolo_trace" ".jsonl" in
  let tr = T.Trace.open_file path in
  Alcotest.(check bool) "enabled after open" true (T.Trace.enabled tr);
  T.Trace.decision tr ~level:1 ~var:3 ~value:true;
  T.Trace.bound_conflict tr ~lb:5 ~path:2 ~upper:7 ~level:4;
  T.Trace.incumbent tr ~cost:9 ~conflicts:12;
  T.Trace.backjump tr ~from_level:6 ~to_level:2 ~conflicts:13;
  T.Trace.restart tr ~conflicts:20;
  T.Trace.cut tr ~kind:"knapsack" ~size:4 ~degree:2;
  Alcotest.(check int) "event count" 6 (T.Trace.events tr);
  T.Trace.close tr;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  Alcotest.(check int) "one line per event" 6 (List.length lines);
  let evs =
    List.map
      (fun line ->
        match T.Json.of_string line with
        | Error e -> Alcotest.failf "invalid JSONL line %S: %s" line e
        | Ok json ->
          (match T.Json.member "t" json with
          | Some (T.Json.Float _) | Some (T.Json.Int _) -> ()
          | _ -> Alcotest.failf "line lacks timestamp: %S" line);
          Option.bind (T.Json.member "ev" json) T.Json.to_string_opt
          |> Option.value ~default:"?")
      lines
  in
  Alcotest.(check (list string)) "event names in order"
    [ "decision"; "bound_conflict"; "incumbent"; "backjump"; "restart"; "cut" ] evs;
  (match T.Json.of_string (List.nth lines 1) with
  | Ok json ->
    Alcotest.(check (option int)) "bound_conflict carries the lb" (Some 5)
      (Option.bind (T.Json.member "lb" json) T.Json.to_int)
  | Error _ -> assert false);
  Sys.remove path

let trace_disabled_no_alloc () =
  let tr = T.Trace.disabled () in
  (* warm up so any one-off allocation is out of the measured window *)
  T.Trace.decision tr ~level:0 ~var:0 ~value:false;
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    T.Trace.decision tr ~level:i ~var:i ~value:true;
    T.Trace.restart tr ~conflicts:i;
    T.Trace.incumbent tr ~cost:i ~conflicts:i
  done;
  let delta = Gc.minor_words () -. before in
  (* allow only the measurement's own boxing, not per-event allocation *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled sink allocates nothing observable (delta=%.0f)" delta)
    true (delta < 256.);
  Alcotest.(check int) "no events recorded" 0 (T.Trace.events tr)

let progress_ticks () =
  let fired = ref [] in
  let p = T.Progress.make ~every:10 ~out:(fun line -> fired := line :: !fired) in
  for c = 1 to 35 do
    T.Progress.tick p ~count:c ~render:(fun () -> string_of_int c)
  done;
  Alcotest.(check (list string)) "fires every 10 counts" [ "10"; "20"; "30" ]
    (List.rev !fired);
  let rendered = ref 0 in
  let d = T.Progress.disabled () in
  T.Progress.tick d ~count:1000 ~render:(fun () -> incr rendered; "x");
  Alcotest.(check int) "disabled never renders" 0 !rendered

let counters_of_registry () =
  let reg = T.Registry.create () in
  T.Counter.set (T.Registry.counter reg "engine.decisions") 7;
  T.Counter.set (T.Registry.counter reg "engine.conflicts") 3;
  T.Counter.set (T.Registry.counter reg "search.nodes") 9;
  let c = Bsolo.Outcome.counters_of_registry reg in
  Alcotest.(check int) "decisions" 7 c.Bsolo.Outcome.decisions;
  Alcotest.(check int) "conflicts" 3 c.Bsolo.Outcome.conflicts;
  Alcotest.(check int) "nodes" 9 c.Bsolo.Outcome.nodes;
  Alcotest.(check int) "missing counters read as zero" 0 c.Bsolo.Outcome.restarts

let report_round_trip () =
  let problem = Gen.problem 3 in
  let tel = T.Ctx.create ~timing:true () in
  let options = { Bsolo.Options.default with telemetry = Some tel } in
  let outcome = Bsolo.Solver.solve ~options problem in
  let report =
    Bsolo.Report.make ~instance:"gen:3" ~engine:"bsolo" ~problem ~options ~telemetry:tel outcome
  in
  match T.Json.of_string (Bsolo.Report.to_string report) with
  | Error e -> Alcotest.failf "report does not parse back: %s" e
  | Ok json ->
    Alcotest.(check (option string)) "schema" (Some Bsolo.Report.schema)
      (Option.bind (T.Json.member "schema" json) T.Json.to_string_opt);
    (match Bsolo.Report.counters_of_json json with
    | None -> Alcotest.fail "report lacks counters"
    | Some c ->
      Alcotest.(check bool) "report counters equal outcome counters" true
        (c = outcome.Bsolo.Outcome.counters));
    let phases = Bsolo.Report.phases_of_json json in
    let phase_sum = List.fold_left (fun acc (_, s) -> acc +. s) 0. phases in
    Alcotest.(check bool) "phase times within elapsed" true
      (phase_sum <= outcome.Bsolo.Outcome.elapsed +. 0.05)

let suite =
  [
    Alcotest.test_case "timer nesting partitions time" `Quick timer_nesting;
    Alcotest.test_case "timer accumulates across calls" `Quick timer_accumulates;
    Alcotest.test_case "disabled timer is a no-op" `Quick timer_disabled;
    Alcotest.test_case "timer survives exceptions" `Quick timer_exception_safe;
    Alcotest.test_case "registry round-trip" `Quick registry_round_trip;
    Alcotest.test_case "histogram buckets" `Quick histogram_buckets;
    Alcotest.test_case "json round-trip" `Quick json_round_trip;
    Alcotest.test_case "json parser rejects malformed input" `Quick json_parser_errors;
    Alcotest.test_case "trace writes parseable JSONL" `Quick trace_round_trip;
    Alcotest.test_case "disabled trace allocates nothing" `Quick trace_disabled_no_alloc;
    Alcotest.test_case "progress reporter ticks" `Quick progress_ticks;
    Alcotest.test_case "counters snapshot from registry" `Quick counters_of_registry;
    Alcotest.test_case "run report round-trips" `Quick report_round_trip;
  ]
